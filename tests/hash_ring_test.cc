// Property tests for the consistent-hash ring that backs partitioned
// directory ownership: deterministic placement, balanced key spread, and
// bounded remap on membership change. These are the invariants the
// partitioned directory mode leans on — if placement drifted between nodes
// or a membership change reshuffled unrelated keys, owner updates would be
// sent to the wrong node and the directory would silently rot.
#include "common/hash.h"

#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace swala {
namespace {

std::vector<std::string> make_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "/cgi-bin/query?item=%zu&page=%zu", i,
                  i % 7);
    keys.emplace_back(buf);
  }
  return keys;
}

HashRing make_ring(std::size_t nodes, std::uint64_t seed = HashRing::kDefaultSeed,
                   std::size_t vnodes = HashRing::kDefaultVnodes) {
  HashRing ring(seed, vnodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ring.add_node(static_cast<std::uint32_t>(i));
  }
  return ring;
}

TEST(HashRingTest, EmptyRingReportsNoOwner) {
  HashRing ring;
  EXPECT_EQ(ring.owner_of("/cgi-bin/a"), HashRing::kNoOwner);
  EXPECT_EQ(ring.num_nodes(), 0u);
  EXPECT_EQ(ring.num_points(), 0u);
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  auto ring = make_ring(1);
  for (const auto& key : make_keys(100)) {
    EXPECT_EQ(ring.owner_of(key), 0u);
  }
}

TEST(HashRingTest, AddAndRemoveAreIdempotent) {
  HashRing ring;
  ring.add_node(3);
  const std::size_t points = ring.num_points();
  ring.add_node(3);
  EXPECT_EQ(ring.num_points(), points);
  EXPECT_EQ(ring.num_nodes(), 1u);
  ring.remove_node(3);
  ring.remove_node(3);
  EXPECT_EQ(ring.num_points(), 0u);
  EXPECT_FALSE(ring.contains(3));
}

// Every node that builds a ring from the same (seed, membership) must
// compute identical ownership — the partitioned mode has no coordination
// step, so this is what keeps all nodes agreeing on who owns a key.
TEST(HashRingTest, PlacementIsDeterministicAcrossBuildOrder) {
  const auto keys = make_keys(5000);
  auto forward = make_ring(64);
  HashRing reversed(HashRing::kDefaultSeed, HashRing::kDefaultVnodes);
  for (int i = 63; i >= 0; --i) {
    reversed.add_node(static_cast<std::uint32_t>(i));
  }
  HashRing churned(HashRing::kDefaultSeed, HashRing::kDefaultVnodes);
  for (std::uint32_t i = 0; i < 96; ++i) churned.add_node(i);
  for (std::uint32_t i = 64; i < 96; ++i) churned.remove_node(i);
  for (const auto& key : keys) {
    const auto owner = forward.owner_of(key);
    EXPECT_EQ(reversed.owner_of(key), owner) << key;
    EXPECT_EQ(churned.owner_of(key), owner) << key;
  }
}

TEST(HashRingTest, DifferentSeedsPlaceDifferently) {
  const auto keys = make_keys(2000);
  auto a = make_ring(64, 1);
  auto b = make_ring(64, 2);
  std::size_t moved = 0;
  for (const auto& key : keys) {
    if (a.owner_of(key) != b.owner_of(key)) ++moved;
  }
  // With 64 nodes, two unrelated placements agree on ~1/64 of keys.
  EXPECT_GT(moved, keys.size() / 2);
}

// Balance: with vnodes virtual points per member, the heaviest node should
// carry no more than ~3x the mean (the classic consistent-hashing spread
// bound for 64 vnodes is much tighter in expectation; 3x gives headroom
// against unlucky seeds while still catching a broken point function, which
// typically skews 10x+).
TEST(HashRingTest, KeySpreadIsBalanced) {
  const auto keys = make_keys(20000);
  for (std::size_t nodes : {64u, 256u, 512u}) {
    auto ring = make_ring(nodes);
    std::unordered_map<std::uint32_t, std::size_t> load;
    for (const auto& key : keys) load[ring.owner_of(key)]++;
    const double mean = static_cast<double>(keys.size()) / nodes;
    std::size_t max_load = 0;
    for (const auto& [node, count] : load) {
      EXPECT_LT(node, nodes);
      max_load = std::max(max_load, count);
    }
    EXPECT_LT(static_cast<double>(max_load), 3.0 * mean)
        << nodes << " nodes: max " << max_load << " vs mean " << mean;
  }
}

// Adding one node to an n-node ring moves ~K/(n+1) keys, and every key that
// moves must move TO the new node — consistent hashing's defining property.
TEST(HashRingTest, AddingNodeRemapsOnlyToNewcomer) {
  const auto keys = make_keys(20000);
  auto before = make_ring(64);
  auto after = make_ring(65);
  std::size_t moved = 0;
  for (const auto& key : keys) {
    const auto old_owner = before.owner_of(key);
    const auto new_owner = after.owner_of(key);
    if (old_owner != new_owner) {
      EXPECT_EQ(new_owner, 64u) << key << " moved between survivors";
      ++moved;
    }
  }
  const double expected = static_cast<double>(keys.size()) / 65.0;
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved), 3.0 * expected)
      << "remap volume should be ~K/n, got " << moved;
}

// Removing a node redistributes only the removed node's keys; keys owned by
// survivors never change hands between two surviving nodes.
TEST(HashRingTest, RemovingNodeNeverRemapsBetweenSurvivors) {
  const auto keys = make_keys(20000);
  auto before = make_ring(64);
  auto after = make_ring(64);
  after.remove_node(17);
  for (const auto& key : keys) {
    const auto old_owner = before.owner_of(key);
    const auto new_owner = after.owner_of(key);
    if (old_owner != 17u) {
      EXPECT_EQ(new_owner, old_owner) << key << " moved between survivors";
    } else {
      EXPECT_NE(new_owner, 17u);
    }
  }
}

// Transitive remap minimality across a whole churn episode: starting from a
// 64-node ring, add node 64, remove node 17, then add node 17 back. Each
// step must only move keys to/from the node that changed, so composing the
// three steps bounds the total churn: a key's owner at the end may differ
// from its start owner only if some intermediate owner was one of the
// churned nodes. The membership {0..64} at the end must also place keys
// identically to a ring built with that membership from scratch (history
// independence — a restarted node rebuilds the same ring).
TEST(HashRingTest, TransitiveChurnRemapsOnlyThroughChurnedNodes) {
  const auto keys = make_keys(20000);
  auto ring = make_ring(64);
  const std::uint64_t v0 = ring.version();

  std::unordered_map<std::string, std::uint32_t> owner_start;
  for (const auto& key : keys) owner_start[key] = ring.owner_of(key);

  auto step = [&](auto&& mutate) {
    std::unordered_map<std::string, std::uint32_t> before;
    for (const auto& key : keys) before[key] = ring.owner_of(key);
    const std::uint32_t changed = mutate(ring);
    for (const auto& key : keys) {
      const auto old_owner = before[key];
      const auto new_owner = ring.owner_of(key);
      if (old_owner != new_owner) {
        EXPECT_TRUE(old_owner == changed || new_owner == changed)
            << key << " moved between bystanders (" << old_owner << " -> "
            << new_owner << " while node " << changed << " churned)";
      }
    }
  };
  step([](HashRing& r) { r.add_node(64); return 64u; });
  step([](HashRing& r) { r.remove_node(17); return 17u; });
  step([](HashRing& r) { r.add_node(17); return 17u; });
  EXPECT_EQ(ring.version(), v0 + 3) << "each change bumps the ring version";

  // History independence: the final membership placed from scratch agrees.
  auto fresh = make_ring(65);
  std::size_t net_moved = 0;
  for (const auto& key : keys) {
    EXPECT_EQ(ring.owner_of(key), fresh.owner_of(key)) << key;
    if (ring.owner_of(key) != owner_start[key]) ++net_moved;
  }
  // Net effect of the episode is exactly "node 64 joined" (17 left and
  // came back), so the net remap volume must stay ~K/65, not O(K).
  EXPECT_LT(static_cast<double>(net_moved), 3.0 * keys.size() / 65.0)
      << "churn episode reshuffled bystander keys";
}

// vnodes = 0 is clamped to 1 point per member rather than an empty ring.
TEST(HashRingTest, ZeroVnodesClampsToOne) {
  HashRing ring(HashRing::kDefaultSeed, 0);
  ring.add_node(0);
  ring.add_node(1);
  EXPECT_EQ(ring.num_points(), 2u);
  EXPECT_NE(ring.owner_of("/cgi-bin/a"), HashRing::kNoOwner);
}

}  // namespace
}  // namespace swala
