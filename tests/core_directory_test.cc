// Tests for the replicated cache directory: per-node tables, lookup
// precedence, version-guarded erase, expiry visibility, all three locking
// modes (parameterized), and a concurrency smoke test.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "core/directory.h"

namespace swala::core {
namespace {

EntryMeta meta(const std::string& key, NodeId owner,
               std::uint64_t version = 1) {
  EntryMeta m;
  m.key = key;
  m.owner = owner;
  m.size_bytes = 10;
  m.cost_seconds = 1.0;
  m.version = version;
  return m;
}

class DirectoryModeTest : public ::testing::TestWithParam<LockingMode> {
 protected:
  // CacheDirectory holds mutexes and is intentionally immovable.
  std::unique_ptr<CacheDirectory> make_dir(NodeId self, std::size_t nodes) {
    auto dir = std::make_unique<CacheDirectory>(self, nodes, GetParam());
    dir->set_clock(&clock_);
    return dir;
  }
  ManualClock clock_{from_seconds(100.0)};
};

TEST_P(DirectoryModeTest, InsertLookupErase) {
  auto dir_ptr = make_dir(0, 3);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /x", 1));
  auto hit = dir.lookup("GET /x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->owner, 1u);
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.table_size(1), 1u);
  EXPECT_EQ(dir.table_size(0), 0u);

  dir.apply_erase(1, "GET /x");
  EXPECT_FALSE(dir.lookup("GET /x").has_value());
  EXPECT_EQ(dir.size(), 0u);
}

TEST_P(DirectoryModeTest, LocalTableWins) {
  auto dir_ptr = make_dir(0, 3);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /x", 2));
  dir.apply_insert(meta("GET /x", 0));
  auto hit = dir.lookup("GET /x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->owner, 0u) << "local copy must take precedence";
}

TEST_P(DirectoryModeTest, LookupAtSpecificNode) {
  auto dir_ptr = make_dir(0, 2);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /y", 1));
  EXPECT_TRUE(dir.lookup_at(1, "GET /y").has_value());
  EXPECT_FALSE(dir.lookup_at(0, "GET /y").has_value());
  EXPECT_FALSE(dir.lookup_at(9, "GET /y").has_value());  // out of range
}

TEST_P(DirectoryModeTest, VersionGuardedErase) {
  auto dir_ptr = make_dir(0, 2);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /v", 1, /*version=*/3));
  // A stale erase for version 2 must not remove the newer insert.
  dir.apply_erase(1, "GET /v", /*version=*/2);
  EXPECT_TRUE(dir.lookup("GET /v").has_value());
  // Matching (or newer) version removes it.
  dir.apply_erase(1, "GET /v", /*version=*/3);
  EXPECT_FALSE(dir.lookup("GET /v").has_value());
}

TEST_P(DirectoryModeTest, UnversionedEraseAlwaysRemoves) {
  auto dir_ptr = make_dir(0, 2);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /u", 1, 7));
  dir.apply_erase(1, "GET /u");
  EXPECT_FALSE(dir.lookup("GET /u").has_value());
}

TEST_P(DirectoryModeTest, ExpiredEntriesInvisible) {
  auto dir_ptr = make_dir(0, 1);
  CacheDirectory& dir = *dir_ptr;
  EntryMeta m = meta("GET /e", 0);
  m.expire_time = clock_.now() + from_seconds(5.0);
  dir.apply_insert(m);
  EXPECT_TRUE(dir.lookup("GET /e").has_value());
  clock_.advance(from_seconds(10.0));
  EXPECT_FALSE(dir.lookup("GET /e").has_value());
  const auto expired = dir.expired_keys(0, clock_.now());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "GET /e");
}

TEST_P(DirectoryModeTest, TouchUpdatesStats) {
  auto dir_ptr = make_dir(0, 1);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /t", 0));
  dir.apply_touch(0, "GET /t", from_seconds(123.0));
  auto hit = dir.lookup("GET /t");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->access_count, 1u);
  EXPECT_EQ(hit->last_access, from_seconds(123.0));
}

TEST_P(DirectoryModeTest, OutOfRangeOwnerIgnored) {
  auto dir_ptr = make_dir(0, 2);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /o", 9));
  EXPECT_EQ(dir.size(), 0u);
  dir.apply_erase(9, "GET /o");  // must not crash
}

TEST_P(DirectoryModeTest, StatsCount) {
  auto dir_ptr = make_dir(0, 2);
  CacheDirectory& dir = *dir_ptr;
  dir.apply_insert(meta("GET /s", 1));
  (void)dir.lookup("GET /s");
  (void)dir.lookup("GET /missing");
  dir.apply_erase(1, "GET /s");
  const auto stats = dir.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.erases, 1u);
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.lookup_hits, 1u);
  EXPECT_GT(stats.lock_acquisitions, 0u);
}

TEST_P(DirectoryModeTest, ConcurrentMixedOperations) {
  auto dir_ptr = make_dir(0, 4);
  CacheDirectory& dir = *dir_ptr;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "GET /k" + std::to_string(i % 37);
        const auto owner = static_cast<NodeId>(t);
        switch (i % 3) {
          case 0:
            dir.apply_insert(meta(key, owner));
            break;
          case 1:
            (void)dir.lookup(key);
            break;
          case 2:
            dir.apply_erase(owner, key);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Sanity: directory is still coherent and usable.
  dir.apply_insert(meta("GET /final", 0));
  EXPECT_TRUE(dir.lookup("GET /final").has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, DirectoryModeTest,
    ::testing::Values(LockingMode::kWholeDirectory, LockingMode::kPerTable,
                      LockingMode::kPerEntry,
                      LockingMode::kMultiGranularity),
    [](const auto& param_info) {
      std::string name = locking_mode_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DirectoryTest, PerEntryModeTakesMoreLocksOnLookup) {
  // The §4.2 argument: per-entry locking multiplies acquisitions per lookup.
  ManualClock clock(0);
  CacheDirectory per_table(0, 4, LockingMode::kPerTable);
  CacheDirectory per_entry(0, 4, LockingMode::kPerEntry);
  per_table.set_clock(&clock);
  per_entry.set_clock(&clock);
  for (NodeId n = 0; n < 4; ++n) {
    per_table.apply_insert(meta("GET /k", n));
    per_entry.apply_insert(meta("GET /k", n));
  }
  const auto base_table = per_table.stats().lock_acquisitions;
  const auto base_entry = per_entry.stats().lock_acquisitions;
  for (int i = 0; i < 100; ++i) {
    (void)per_table.lookup("GET /k");
    (void)per_entry.lookup("GET /k");
  }
  const auto table_locks = per_table.stats().lock_acquisitions - base_table;
  const auto entry_locks = per_entry.stats().lock_acquisitions - base_entry;
  EXPECT_GT(entry_locks, table_locks);
}

}  // namespace
}  // namespace swala::core
