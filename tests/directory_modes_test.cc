// Mode-parity battery for the three directory cooperation schemes
// (replicated broadcast, consistent-hash partitioned ownership, ICP-style
// query-on-miss). With zero propagation delay, zero probe latency and no
// faults the schemes are semantically equivalent — every lookup sees the
// same global knowledge — so a deterministic trace must converge to
// identical cache contents and identical hit/miss decisions in all three.
// Any drift here means a mode is silently answering differently.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

namespace swala::sim {
namespace {

workload::Trace parity_trace() {
  // Small deterministic mix: enough repeats for remote hits, enough unique
  // keys to spread across every node's ring range.
  return workload::synthesize_request_mix(600, 180, 1.0, 99);
}

SimConfig parity_config(core::DirectoryMode mode) {
  SimConfig config;
  config.nodes = 4;
  config.client_streams = 8;
  config.directory_mode = mode;
  // Collapse the weak-consistency windows: broadcasts land instantly and
  // probes are free, so all three modes see identical virtual timelines and
  // the comparison is exact, not statistical.
  config.costs.directory_update_delay = 0.0;
  config.costs.query_latency = 0.0;
  return config;
}

// A trace with no overlapping requests: arrivals are spaced wider than any
// request can take, so the cluster handles exactly one request at a time.
// This is the regime where the three modes are semantically equivalent —
// concurrent same-key execution is precisely where they legitimately differ
// (replicated propagation is asynchronous even at zero delay; probes read
// the peer's current state synchronously).
workload::Trace sequential_trace() {
  auto trace = workload::synthesize_request_mix(400, 150, 1.0, 99);
  double max_service = 0.0;
  for (const auto& r : trace) {
    max_service = std::max(max_service, r.service_seconds);
  }
  const double spacing = max_service + 1.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_seconds = static_cast<double>(i) * spacing;
  }
  return trace;
}

TEST(DirectoryModeParityTest, IdenticalCacheContentsAndDecisions) {
  const auto trace = sequential_trace();
  auto sequential = [](core::DirectoryMode mode) {
    SimConfig config = parity_config(mode);
    config.open_loop = true;  // replay at the (non-overlapping) trace times
    return config;
  };
  const auto replicated =
      run_cluster_sim(trace, sequential(core::DirectoryMode::kReplicated));
  const auto partitioned =
      run_cluster_sim(trace, sequential(core::DirectoryMode::kPartitioned));
  const auto query =
      run_cluster_sim(trace, sequential(core::DirectoryMode::kQuery));

  // The modes exercised what they should: remote hits happened, and the
  // non-replicated modes actually took their probe paths.
  ASSERT_GT(replicated.cache.remote_hits, 0u);
  EXPECT_GT(partitioned.cache.remote_dir_lookups, 0u);
  EXPECT_GT(partitioned.cache.remote_dir_hits, 0u);
  EXPECT_GT(query.cache.peer_queries, 0u);
  EXPECT_GT(query.cache.peer_query_hits, 0u);
  EXPECT_EQ(replicated.cache.remote_dir_lookups, 0u);
  EXPECT_EQ(replicated.cache.peer_queries, 0u);

  // Identical hit/miss decisions...
  for (const auto* r : {&partitioned, &query}) {
    EXPECT_EQ(r->requests_completed, replicated.requests_completed);
    EXPECT_EQ(r->cache.lookups, replicated.cache.lookups);
    EXPECT_EQ(r->cache.local_hits, replicated.cache.local_hits);
    EXPECT_EQ(r->cache.remote_hits, replicated.cache.remote_hits);
    EXPECT_EQ(r->cache.misses, replicated.cache.misses);
    EXPECT_EQ(r->cache.inserts, replicated.cache.inserts);
    EXPECT_EQ(r->cache.false_hits, replicated.cache.false_hits);
    EXPECT_EQ(r->cache.false_misses, replicated.cache.false_misses);
    // ...identical timelines (probes were free, so response times match)...
    EXPECT_DOUBLE_EQ(r->sim_seconds, replicated.sim_seconds);
    // ...and byte-identical final cache contents on every node.
    EXPECT_EQ(r->node_keys, replicated.node_keys);
  }
}

TEST(DirectoryModeParityTest, EachModeIsDeterministic) {
  const auto trace = parity_trace();
  for (auto mode :
       {core::DirectoryMode::kReplicated, core::DirectoryMode::kPartitioned,
        core::DirectoryMode::kQuery}) {
    const auto a = run_cluster_sim(trace, parity_config(mode));
    const auto b = run_cluster_sim(trace, parity_config(mode));
    EXPECT_EQ(a.node_keys, b.node_keys);
    EXPECT_EQ(a.cache.local_hits, b.cache.local_hits);
    EXPECT_EQ(a.cache.remote_hits, b.cache.remote_hits);
    EXPECT_EQ(a.dir_update_frames, b.dir_update_frames);
    EXPECT_EQ(a.dir_query_frames, b.dir_query_frames);
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  }
}

// The asymptote the tentpole exists for: replicated pays O(n) update frames
// per insert, partitioned O(1), query zero (its traffic moves to miss-time
// probes instead).
TEST(DirectoryModeParityTest, UpdateTrafficAsymptote) {
  const auto trace = parity_trace();
  const auto replicated =
      run_cluster_sim(trace, parity_config(core::DirectoryMode::kReplicated));
  const auto partitioned =
      run_cluster_sim(trace, parity_config(core::DirectoryMode::kPartitioned));
  const auto query =
      run_cluster_sim(trace, parity_config(core::DirectoryMode::kQuery));

  ASSERT_GT(replicated.cache.inserts, 0u);
  const double repl_fpi = static_cast<double>(replicated.dir_update_frames) /
                          static_cast<double>(replicated.cache.inserts);
  const double part_fpi = static_cast<double>(partitioned.dir_update_frames) /
                          static_cast<double>(partitioned.cache.inserts);
  // 4 nodes: replicated broadcasts 3 legs per insert (plus erase legs);
  // partitioned sends at most one kOwnerUpdate per insert (3/4 of keys are
  // owned remotely) plus the occasional eviction erase.
  EXPECT_GE(repl_fpi, 3.0);
  EXPECT_LE(part_fpi, 1.5);
  EXPECT_EQ(query.dir_update_frames, 0u);
  EXPECT_EQ(query.dir_update_bytes, 0u);
  EXPECT_GT(query.dir_query_frames, 0u);
  // Replicated and partitioned never send miss-time probes in the sim
  // (partitioned probes are owner lookups, counted as query frames).
  EXPECT_EQ(replicated.dir_query_frames, 0u);
  EXPECT_GT(partitioned.dir_query_frames, 0u);
}

// Membership churn under load, all three modes: the highest node joins at
// 30% of the trace, node 0 decommissions gracefully at 60%. Every mode must
// end oracle-consistent with zero committed-entry loss, and the whole
// episode must stay deterministic.
TEST(DirectoryModeParityTest, ChurnUnderLoadStaysConsistentWithZeroLoss) {
  const auto trace = workload::synthesize_request_mix(600, 200, 1.0, 77);
  for (auto mode :
       {core::DirectoryMode::kReplicated, core::DirectoryMode::kPartitioned,
        core::DirectoryMode::kQuery}) {
    SCOPED_TRACE(core::directory_mode_name(mode));
    SimConfig config = parity_config(mode);
    config.join_node = 3;
    config.join_after_fraction = 0.3;
    config.decommission_node = 0;
    config.decommission_after_fraction = 0.6;
    config.handoff_batch_bytes = 0;  // uncapped: the loss check is exact
    const auto report = run_cluster_sim(trace, config);

    EXPECT_EQ(report.membership_transitions, 2u);
    EXPECT_TRUE(report.churn_consistent) << report.churn_report;
    EXPECT_GT(report.handoff_frames, 0u)
        << "the decommission must ship entries to successors";
    EXPECT_GT(report.handoffs_adopted, 0u);
    ASSERT_FALSE(report.decommissioned_keys.empty());

    // Zero loss: every key resident on the leaver at decommission time
    // survives on some remaining node.
    std::vector<std::string> survivors;
    for (std::size_t i = 1; i < report.node_keys.size(); ++i) {
      survivors.insert(survivors.end(), report.node_keys[i].begin(),
                       report.node_keys[i].end());
    }
    std::sort(survivors.begin(), survivors.end());
    for (const auto& key : report.decommissioned_keys) {
      EXPECT_TRUE(
          std::binary_search(survivors.begin(), survivors.end(), key))
          << key << " lost in the handoff";
    }

    // Determinism holds under churn.
    const auto again = run_cluster_sim(trace, config);
    EXPECT_EQ(report.node_keys, again.node_keys);
    EXPECT_EQ(report.handoff_frames, again.handoff_frames);
    EXPECT_EQ(report.transition_frames, again.transition_frames);
    EXPECT_DOUBLE_EQ(report.sim_seconds, again.sim_seconds);
  }
}

}  // namespace
}  // namespace swala::sim
