// Soak test: a 4-node cluster under concurrent mixed load with every
// mechanism churning at once — small caches (constant eviction +
// broadcast), TTLs (purge daemon), repeats (local/remote hits, false
// misses), and pattern invalidations — then invariant checks.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/local_cluster.h"
#include "common/random.h"

namespace swala::cluster {
namespace {

core::ManagerOptions soak_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {30, 0};  // small: evictions happen constantly
  core::RuleDecision ttl_rule;
  ttl_rule.cacheable = true;
  ttl_rule.ttl_seconds = 0.5;
  mo.rules.add_rule("/cgi-bin/ttl/*", ttl_rule);
  core::RuleDecision plain;
  plain.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", plain);
  return mo;
}

cgi::CgiOutput ok_output(std::size_t bytes) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = std::string(bytes, 'z');
  return out;
}

TEST(ClusterSoakTest, MixedChurnStaysConsistent) {
  GroupOptions go;
  go.purge_interval_seconds = 0.1;
  // Concurrent churn legitimately strands remote-table entries (an insert
  // broadcast in flight when a matching invalidation lands is applied after
  // it — permanent drift under plain weak consistency). The anti-entropy
  // rounds are what reconverge it, so the global oracle below can demand
  // exact agreement.
  go.anti_entropy_interval_ms = 200;
  LocalCluster cluster(4, soak_options, RealClock::instance(), go);

  constexpr int kThreadsPerNode = 2;
  constexpr int kOpsPerThread = 300;
  std::atomic<std::uint64_t> executed{0};

  std::vector<std::thread> threads;
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    for (int t = 0; t < kThreadsPerNode; ++t) {
      threads.emplace_back([&, node, t] {
        Rng rng(node * 131 + static_cast<std::uint64_t>(t));
        auto& manager = cluster.manager(node);
        for (int op = 0; op < kOpsPerThread; ++op) {
          const int dice = static_cast<int>(rng.uniform_int(0, 99));
          if (dice < 90) {
            // A request from a popular pool (repeats) or the TTL family.
            const bool ttl = dice < 15;
            const std::string target =
                std::string("/cgi-bin/") + (ttl ? "ttl/" : "") + "q?k=" +
                std::to_string(rng.uniform_int(0, 60));
            http::Uri uri;
            ASSERT_TRUE(http::parse_uri(target, &uri));
            auto lookup = manager.lookup(http::Method::kGet, uri);
            if (lookup.outcome == core::LookupOutcome::kMissMustExecute) {
              executed.fetch_add(1, std::memory_order_relaxed);
              manager.complete(http::Method::kGet, uri, lookup.rule,
                               ok_output(64 + static_cast<std::size_t>(
                                                  rng.uniform_int(0, 512))),
                               1.0);
            }
          } else if (dice < 95) {
            manager.invalidate("GET /cgi-bin/q?k=" +
                               std::to_string(rng.uniform_int(0, 60)));
          } else {
            manager.purge_expired();
          }
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();

  // Quiesce: wait for in-flight broadcasts to drain (deterministic, not a
  // blind sleep).
  EXPECT_TRUE(cluster.quiesce()) << "broadcast backlog never drained";

  // Global oracle: per-node store↔directory mirrors plus cross-node drift.
  // Transient drift from the churn is legal; the anti-entropy digest rounds
  // (two-strike rule, so >= 2 intervals) must reconverge it — poll while
  // the daemons still run, then freeze.
  core::ClusterConsistencyReport cluster_report;
  const auto repair_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    cluster_report = cluster.check_cluster_consistency();
    if (cluster_report.consistent() ||
        std::chrono::steady_clock::now() > repair_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(cluster_report.consistent()) << cluster_report.to_string();
  cluster.stop();

  // Invariants per node: the local directory table mirrors the store, and
  // capacity limits hold.
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    auto& manager = cluster.manager(node);
    const auto report = manager.debug_check_consistency();
    EXPECT_TRUE(report.consistent())
        << "node " << node << ": " << report.to_string();
    EXPECT_LE(manager.store().entry_count(), 30u);
    EXPECT_EQ(manager.directory().table_size(
                  static_cast<core::NodeId>(node)),
              manager.store().entry_count())
        << "node " << node;
    for (const auto& key : manager.store().keys()) {
      EXPECT_TRUE(manager.directory()
                      .lookup_at(static_cast<core::NodeId>(node), key)
                      .has_value() ||
                  manager.store().peek(key) == std::nullopt)
          << "store/directory divergence at node " << node << ": " << key;
    }
  }

  // The cluster did real work and real sharing.
  std::uint64_t hits = 0, false_misses = 0;
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    hits += cluster.manager(node).stats().hits();
    false_misses += cluster.manager(node).stats().false_misses;
  }
  EXPECT_GT(executed.load(), 0u);
  EXPECT_GT(hits, 0u);
  SUCCEED() << "executed=" << executed.load() << " hits=" << hits
            << " false_misses=" << false_misses;
}

}  // namespace
}  // namespace swala::cluster
