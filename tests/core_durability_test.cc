// Durability tests: CRC-32C vectors, the checksummed cache-file format,
// atomic manifest replacement, the FaultingFsOps injection seam (EIO,
// ENOSPC, short writes, crash-at-op), startup scrub after a simulated
// crash, and the manager-level degradation circuit breaker and checkpoint
// cadence. Ends with the full crash → restart → scrub acceptance scenario.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "common/hash.h"
#include "core/fs_ops.h"
#include "core/manager.h"

namespace swala::core {
namespace {

const std::string kDir = "/tmp/swala_durability_test";
const std::string kManifest = kDir + "/manifest.txt";

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::size_t count_files_with_extension(const std::string& dir,
                                       const std::string& ext) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ext) ++n;
  }
  return n;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { std::filesystem::remove_all(kDir); }
};

// ---- CRC-32C ----

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 §B.4 / the standard Castagnoli check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ContinuationMatchesOneShot) {
  const std::string data = "cooperative caching of dynamic content";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    const auto head = std::string_view(data).substr(0, split);
    const auto tail = std::string_view(data).substr(split);
    EXPECT_EQ(crc32c_continue(crc32c(head), tail), crc32c(data));
  }
}

// ---- cache-file format ----

TEST(CacheFileFormatTest, RoundtripVerifies) {
  const std::string payload = "dynamic cgi result bytes";
  const std::uint64_t key_hash = fnv1a64("GET /cgi-bin/x");
  const std::string file = encode_cache_header(key_hash, payload) + payload;
  ASSERT_EQ(file.size(), kCacheHeaderSize + payload.size());

  auto verified = verify_cache_file(file, key_hash);
  ASSERT_TRUE(verified.is_ok()) << verified.status().to_string();
  EXPECT_EQ(verified.value(), payload);
  // Hash 0 = caller does not know the key; the key check is skipped.
  EXPECT_TRUE(verify_cache_file(file, 0).is_ok());
}

TEST(CacheFileFormatTest, DetectsEveryCorruptionMode) {
  const std::string payload = "payload-payload-payload";
  const std::uint64_t key_hash = fnv1a64("GET /cgi-bin/y");
  const std::string good = encode_cache_header(key_hash, payload) + payload;

  // Wrong key: a mis-adopted or swapped file must not verify.
  EXPECT_EQ(verify_cache_file(good, key_hash + 1).status().code(),
            StatusCode::kCorrupt);

  // Single flipped payload bit.
  std::string flipped = good;
  flipped[kCacheHeaderSize + 3] ^= 0x01;
  EXPECT_EQ(verify_cache_file(flipped, key_hash).status().code(),
            StatusCode::kCorrupt);

  // Flipped header byte (caught by the header CRC).
  std::string bad_header = good;
  bad_header[9] ^= 0x40;
  EXPECT_EQ(verify_cache_file(bad_header, key_hash).status().code(),
            StatusCode::kCorrupt);

  // Truncations, including an empty file and a torn header.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, kCacheHeaderSize - 1,
        good.size() - 1}) {
    EXPECT_EQ(
        verify_cache_file(std::string_view(good).substr(0, len), key_hash)
            .status()
            .code(),
        StatusCode::kCorrupt)
        << "length " << len;
  }

  // Wrong magic and unsupported version (header CRC recomputed so only the
  // field under test differs).
  std::string wrong_magic = good;
  wrong_magic[0] ^= 0xFF;
  EXPECT_FALSE(verify_cache_file(wrong_magic, key_hash).is_ok());
}

// ---- atomic file replacement under faults ----

TEST_F(DurabilityTest, WriteFileAtomicKeepsOldContentOnFailure) {
  FaultingFsOps fs;
  ASSERT_TRUE(make_dirs(&fs, kDir).is_ok());
  const std::string path = kDir + "/config.txt";
  ASSERT_TRUE(write_file_atomic(&fs, path, "old-content").is_ok());

  fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, EIO});
  const auto st = write_file_atomic(&fs, path, "new-content");
  EXPECT_FALSE(st.is_ok());
  EXPECT_GE(fs.faults_injected(), 1u);

  // A reader must still see the previous content, and no temp debris.
  EXPECT_EQ(read_whole_file(path), "old-content");
  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
}

// ---- recursive directory creation ----

TEST_F(DurabilityTest, DiskBackendCreatesNestedDirectories) {
  const std::string nested = kDir + "/a/b/c";
  DiskBackend backend(nested);
  ASSERT_TRUE(backend.init_status().is_ok())
      << backend.init_status().to_string();
  auto id = backend.put("nested-data");
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  auto back = backend.get(id.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "nested-data");
}

TEST_F(DurabilityTest, DirectoryCreationFailureSurfacesEverywhere) {
  FaultingFsOps fs;
  fs.add_rule({FsOp::kMkdir, "", FsFaultKind::kError, EACCES});
  DiskBackend backend(kDir + "/denied", &fs);
  EXPECT_FALSE(backend.init_status().is_ok());
  // Puts fail fast with the construction error, not a per-file surprise.
  EXPECT_FALSE(backend.put("x").is_ok());

  // And the manager exposes it so from_config can refuse to boot.
  FaultingFsOps manager_fs;
  manager_fs.add_rule({FsOp::kMkdir, "", FsFaultKind::kError, EACCES});
  ManualClock clock(from_seconds(1.0));
  ManagerOptions mo;
  mo.limits = {100, 0};
  mo.disk_dir = kDir + "/denied2";
  mo.fs_ops = &manager_fs;
  CacheManager manager(0, 1, mo, &clock);
  EXPECT_FALSE(manager.storage_status().is_ok());
}

// ---- put failure modes ----

TEST_F(DurabilityTest, PutFailureLeavesNoFileBehind) {
  for (const int error_no : {EIO, ENOSPC}) {
    std::filesystem::remove_all(kDir);
    FaultingFsOps fs;
    DiskBackend backend(kDir, &fs);
    ASSERT_TRUE(backend.init_status().is_ok());
    fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, error_no});

    auto id = backend.put("doomed-data", fnv1a64("GET /k"));
    ASSERT_FALSE(id.is_ok());
    EXPECT_EQ(id.status().code(), StatusCode::kIoError);
    EXPECT_EQ(backend.bytes_stored(), 0u);
    // The failed write's temp file is unlinked; nothing reaches a live name.
    EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
    EXPECT_EQ(count_files_with_extension(kDir, ".cache"), 0u);
  }
}

TEST_F(DurabilityTest, ShortWritesAreRetriedToCompletion) {
  FaultingFsOps fs;
  DiskBackend backend(kDir, &fs);
  ASSERT_TRUE(backend.init_status().is_ok());
  // Every write delivers only half its bytes; the put loop must keep going.
  FsFaultRule rule;
  rule.op = FsOp::kWrite;
  rule.kind = FsFaultKind::kShortWrite;
  rule.count = 3;
  fs.add_rule(rule);

  const std::string data(1000, 'z');
  auto id = backend.put(data, fnv1a64("GET /short"));
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  EXPECT_GE(fs.faults_injected(), 3u);
  auto back = backend.get(id.value());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), data);
}

// ---- read-side integrity ----

TEST_F(DurabilityTest, GetDetectsBitFlipOnDisk) {
  DiskBackend backend(kDir);
  auto id = backend.put("precious-bytes", fnv1a64("GET /flip"));
  ASSERT_TRUE(id.is_ok());

  const std::string path = backend.path_for(id.value());
  std::string contents = read_whole_file(path);
  contents[kCacheHeaderSize + 2] ^= 0x10;  // silent media corruption
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  auto back = backend.get(id.value());
  ASSERT_FALSE(back.is_ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
}

TEST_F(DurabilityTest, AdoptRejectsCorruptPayloadOfCorrectSize) {
  const std::uint64_t key_hash = fnv1a64("GET /adopt");
  const std::string data = "adoptable-content";
  StorageId id;
  std::string path;
  {
    DiskBackend backend(kDir);
    auto put = backend.put(data, key_hash);
    ASSERT_TRUE(put.is_ok());
    id = put.value();
    path = backend.path_for(id);
    backend.set_retain_on_destruction(true);
  }
  // Flip one payload byte in place: the size check cannot see this — only
  // the CRC can.
  std::string contents = read_whole_file(path);
  ASSERT_EQ(contents.size(), kCacheHeaderSize + data.size());
  contents[kCacheHeaderSize] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  DiskBackend backend(kDir);
  const auto st = backend.adopt(id, data.size(), key_hash);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kCorrupt);
  // Quarantined, not serving and not deleted (postmortem evidence).
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_EQ(backend.scrub().quarantined, 1u);
}

// ---- crash simulation ----

TEST_F(DurabilityTest, CrashDuringPutThenRestartScrubsDebris) {
  FaultingFsOps fs;
  const std::uint64_t key_hash = fnv1a64("GET /survivor");
  StorageId survivor_id;
  {
    DiskBackend backend(kDir, &fs);
    auto put = backend.put("survivor-bytes", key_hash);
    ASSERT_TRUE(put.is_ok());
    survivor_id = put.value();

    // The process "dies" during the payload write of the next put: the
    // header made it to the temp file, the payload only partially, and every
    // later filesystem operation fails (including the cleanup unlink — a
    // dead process cleans nothing).
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    crash.skip = 1;
    fs.add_rule(crash);
    auto torn = backend.put("torn-bytes-never-committed", fnv1a64("GET /torn"));
    ASSERT_FALSE(torn.is_ok());
    EXPECT_TRUE(fs.crashed());
    backend.set_retain_on_destruction(true);
  }
  // The torn temp file is still on disk, exactly as after SIGKILL.
  ASSERT_EQ(count_files_with_extension(kDir, ".tmp"), 1u);

  // Restart: new backend over the same directory.
  fs.reset_crash();
  fs.clear();
  DiskBackend backend(kDir, &fs);
  ASSERT_TRUE(backend.adopt(survivor_id, 14, key_hash).is_ok());
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.adopted, 1u);
  EXPECT_EQ(report.temps_removed, 1u);
  EXPECT_EQ(report.orphans_removed, 0u);
  EXPECT_EQ(report.quarantined, 0u);

  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
  auto back = backend.get(survivor_id);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "survivor-bytes");
}

// ---- manager-level degradation and checkpointing ----

class ManagerDurabilityTest : public DurabilityTest {
 protected:
  ManagerOptions base_options() {
    ManagerOptions mo;
    mo.limits = {100, 0};
    mo.disk_dir = kDir;
    RuleDecision d;
    d.cacheable = true;
    d.ttl_seconds = 600.0;
    mo.rules.add_rule("/cgi-bin/*", d);
    return mo;
  }

  /// Runs one miss-then-complete cycle for `target`.
  void run_request(CacheManager& manager, const std::string& target,
                   const std::string& body) {
    http::Uri uri;
    ASSERT_TRUE(http::parse_uri(target, &uri));
    auto lookup = manager.lookup(http::Method::kGet, uri);
    ASSERT_NE(lookup.outcome, LookupOutcome::kUncacheable) << target;
    if (lookup.outcome == LookupOutcome::kHit) return;
    cgi::CgiOutput out;
    out.success = true;
    out.body = body;
    out.content_type = "text/html";
    manager.complete(http::Method::kGet, uri, lookup.rule, out, 1.0);
  }

  LookupResult do_lookup(CacheManager& manager, const std::string& target) {
    http::Uri uri;
    EXPECT_TRUE(http::parse_uri(target, &uri));
    return manager.lookup(http::Method::kGet, uri);
  }
};

TEST_F(ManagerDurabilityTest, DegradesAfterConsecutiveDiskFailuresAndProbesBack) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  mo.disk_failure_threshold = 2;
  mo.degraded_probe_every = 3;
  ManualClock clock(from_seconds(10.0));
  CacheManager manager(0, 1, mo, &clock);

  fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, EIO});
  run_request(manager, "/cgi-bin/f1", "b1");  // fails: disk_errors 1
  EXPECT_FALSE(manager.store_degraded());
  run_request(manager, "/cgi-bin/f2", "b2");  // fails: threshold reached
  EXPECT_TRUE(manager.store_degraded());

  // First degraded attempt is the probe (still failing), the next two are
  // skipped without touching the disk at all.
  run_request(manager, "/cgi-bin/f3", "b3");
  run_request(manager, "/cgi-bin/f4", "b4");
  run_request(manager, "/cgi-bin/f5", "b5");
  auto stats = manager.stats();
  EXPECT_EQ(stats.disk_errors, 3u);
  EXPECT_EQ(stats.degraded_skips, 2u);
  EXPECT_EQ(stats.store_degraded, 1u);
  EXPECT_EQ(stats.inserts, 0u);

  // The disk comes back; the next probe succeeds and caching resumes.
  fs.clear();
  run_request(manager, "/cgi-bin/f6", "b6");  // probe: succeeds
  EXPECT_FALSE(manager.store_degraded());
  run_request(manager, "/cgi-bin/f7", "b7");
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/f7").outcome, LookupOutcome::kHit);
  stats = manager.stats();
  EXPECT_EQ(stats.store_degraded, 0u);
  EXPECT_GE(stats.inserts, 2u);
}

TEST_F(ManagerDurabilityTest, CheckpointsRideThePurgeTick) {
  ManagerOptions mo = base_options();
  mo.state_file = kManifest;
  mo.checkpoint_interval_seconds = 10.0;
  ManualClock clock(from_seconds(100.0));
  CacheManager manager(0, 1, mo, &clock);

  // Checkpointing is gated until the warm restore has run (the purge daemon
  // must never overwrite the manifest the restore is about to read).
  manager.purge_expired();
  EXPECT_EQ(manager.stats().checkpoints, 0u);
  auto first_boot = manager.restore_state(kManifest);
  EXPECT_EQ(first_boot.status().code(), StatusCode::kNotFound);

  run_request(manager, "/cgi-bin/ckpt", "checkpointed-body");
  manager.purge_expired();  // first post-restore tick always checkpoints
  EXPECT_EQ(manager.stats().checkpoints, 1u);
  EXPECT_TRUE(std::filesystem::exists(kManifest));

  manager.purge_expired();  // interval not elapsed: no new checkpoint
  EXPECT_EQ(manager.stats().checkpoints, 1u);

  clock.advance(from_seconds(11.0));
  manager.purge_expired();
  EXPECT_EQ(manager.stats().checkpoints, 2u);

  // The checkpointed manifest restores in a fresh process without any
  // explicit save_state on the first manager.
  ManualClock clock2(from_seconds(7.0));
  CacheManager restored(0, 1, mo, &clock2);
  auto count = restored.restore_state(kManifest);
  ASSERT_TRUE(count.is_ok()) << count.status().to_string();
  EXPECT_EQ(count.value(), 1u);
  EXPECT_EQ(do_lookup(restored, "/cgi-bin/ckpt").outcome, LookupOutcome::kHit);
}

// ---- the acceptance scenario from the issue ----
//
// Crash injected mid-put, node restarts over the same directory, one
// manifest-referenced file torn in place. After restore + scrub: the torn
// entry is a clean miss, every other entry serves CRC-verified bytes with a
// rebased TTL, and no temp or orphan files remain.
TEST_F(ManagerDurabilityTest, CrashRestartScrubAcceptance) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  ManualClock clock(from_seconds(1000.0));
  {
    CacheManager manager(0, 1, mo, &clock);
    run_request(manager, "/cgi-bin/a", "body-a");
    run_request(manager, "/cgi-bin/b", "body-b");
    run_request(manager, "/cgi-bin/c", "body-c");
    ASSERT_TRUE(manager.save_state(kManifest).is_ok());

    // SIGKILL arrives during /cgi-bin/d's payload write.
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    crash.skip = 1;
    fs.add_rule(crash);
    run_request(manager, "/cgi-bin/d", "body-d-never-durable");
    EXPECT_TRUE(fs.crashed());
    EXPECT_EQ(manager.stats().disk_errors, 1u);
  }
  ASSERT_EQ(count_files_with_extension(kDir, ".tmp"), 1u);

  // While the node was down, /cgi-bin/c's file (insert order: id 3) was
  // truncated — a torn sector the atomic rename could not have produced.
  const std::string torn_path = kDir + "/swala-3.cache";
  ASSERT_TRUE(std::filesystem::exists(torn_path));
  std::filesystem::resize_file(
      torn_path, std::filesystem::file_size(torn_path) - 3);

  // Restart: fresh manager, fresh clock epoch, same directory.
  fs.reset_crash();
  fs.clear();
  ManualClock restart_clock(from_seconds(50.0));
  CacheManager manager(0, 1, mo, &restart_clock);
  auto restored = manager.restore_state(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 2u);

  const ScrubReport scrub = manager.last_scrub();
  EXPECT_EQ(scrub.adopted, 2u);
  EXPECT_EQ(scrub.quarantined, 1u);
  EXPECT_EQ(scrub.temps_removed, 1u);
  EXPECT_EQ(scrub.orphans_removed, 0u);

  // Survivors serve their exact bytes; the torn entry is a clean miss.
  auto a = do_lookup(manager, "/cgi-bin/a");
  ASSERT_EQ(a.outcome, LookupOutcome::kHit);
  EXPECT_EQ(a.result.data, "body-a");
  auto b = do_lookup(manager, "/cgi-bin/b");
  ASSERT_EQ(b.outcome, LookupOutcome::kHit);
  EXPECT_EQ(b.result.data, "body-b");
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/c").outcome,
            LookupOutcome::kMissMustExecute);
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/d").outcome,
            LookupOutcome::kMissMustExecute);

  // TTLs were rebased against the restart clock.
  auto meta = manager.directory().lookup("GET /cgi-bin/a");
  ASSERT_TRUE(meta.has_value());
  const double remaining =
      to_seconds(meta->expire_time - restart_clock.now());
  EXPECT_NEAR(remaining, 600.0, 1.0);

  // No debris: two live cache files, the quarantined one renamed aside.
  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
  EXPECT_EQ(count_files_with_extension(kDir, ".cache"), 2u);
  EXPECT_EQ(count_files_with_extension(kDir, ".corrupt"), 1u);
}

}  // namespace
}  // namespace swala::core
