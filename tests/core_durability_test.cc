// Durability tests: CRC-32C vectors, the checksummed cache-file format,
// atomic manifest replacement, the FaultingFsOps injection seam (EIO,
// ENOSPC, short writes, crash-at-op), startup scrub after a simulated
// crash, and the manager-level degradation circuit breaker and checkpoint
// cadence. Ends with the full crash → restart → scrub acceptance scenario.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "common/hash.h"
#include "core/fs_ops.h"
#include "core/manager.h"
#include "core/volume.h"

namespace swala::core {
namespace {

const std::string kDir = "/tmp/swala_durability_test";
const std::string kManifest = kDir + "/manifest.txt";

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::size_t count_files_with_extension(const std::string& dir,
                                       const std::string& ext) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ext) ++n;
  }
  return n;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { std::filesystem::remove_all(kDir); }
};

// ---- CRC-32C ----

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 §B.4 / the standard Castagnoli check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ContinuationMatchesOneShot) {
  const std::string data = "cooperative caching of dynamic content";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    const auto head = std::string_view(data).substr(0, split);
    const auto tail = std::string_view(data).substr(split);
    EXPECT_EQ(crc32c_continue(crc32c(head), tail), crc32c(data));
  }
}

// ---- cache-file format ----

TEST(CacheFileFormatTest, RoundtripVerifies) {
  const std::string payload = "dynamic cgi result bytes";
  const std::uint64_t key_hash = fnv1a64("GET /cgi-bin/x");
  const std::string file = encode_cache_header(key_hash, payload) + payload;
  ASSERT_EQ(file.size(), kCacheHeaderSize + payload.size());

  auto verified = verify_cache_file(file, key_hash);
  ASSERT_TRUE(verified.is_ok()) << verified.status().to_string();
  EXPECT_EQ(verified.value(), payload);
  // Hash 0 = caller does not know the key; the key check is skipped.
  EXPECT_TRUE(verify_cache_file(file, 0).is_ok());
}

TEST(CacheFileFormatTest, DetectsEveryCorruptionMode) {
  const std::string payload = "payload-payload-payload";
  const std::uint64_t key_hash = fnv1a64("GET /cgi-bin/y");
  const std::string good = encode_cache_header(key_hash, payload) + payload;

  // Wrong key: a mis-adopted or swapped file must not verify.
  EXPECT_EQ(verify_cache_file(good, key_hash + 1).status().code(),
            StatusCode::kCorrupt);

  // Single flipped payload bit.
  std::string flipped = good;
  flipped[kCacheHeaderSize + 3] ^= 0x01;
  EXPECT_EQ(verify_cache_file(flipped, key_hash).status().code(),
            StatusCode::kCorrupt);

  // Flipped header byte (caught by the header CRC).
  std::string bad_header = good;
  bad_header[9] ^= 0x40;
  EXPECT_EQ(verify_cache_file(bad_header, key_hash).status().code(),
            StatusCode::kCorrupt);

  // Truncations, including an empty file and a torn header.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, kCacheHeaderSize - 1,
        good.size() - 1}) {
    EXPECT_EQ(
        verify_cache_file(std::string_view(good).substr(0, len), key_hash)
            .status()
            .code(),
        StatusCode::kCorrupt)
        << "length " << len;
  }

  // Wrong magic and unsupported version (header CRC recomputed so only the
  // field under test differs).
  std::string wrong_magic = good;
  wrong_magic[0] ^= 0xFF;
  EXPECT_FALSE(verify_cache_file(wrong_magic, key_hash).is_ok());
}

// ---- atomic file replacement under faults ----

TEST_F(DurabilityTest, WriteFileAtomicKeepsOldContentOnFailure) {
  FaultingFsOps fs;
  ASSERT_TRUE(make_dirs(&fs, kDir).is_ok());
  const std::string path = kDir + "/config.txt";
  ASSERT_TRUE(write_file_atomic(&fs, path, "old-content").is_ok());

  fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, EIO});
  const auto st = write_file_atomic(&fs, path, "new-content");
  EXPECT_FALSE(st.is_ok());
  EXPECT_GE(fs.faults_injected(), 1u);

  // A reader must still see the previous content, and no temp debris.
  EXPECT_EQ(read_whole_file(path), "old-content");
  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
}

// ---- recursive directory creation ----

TEST_F(DurabilityTest, DiskBackendCreatesNestedDirectories) {
  const std::string nested = kDir + "/a/b/c";
  DiskBackend backend(nested);
  ASSERT_TRUE(backend.init_status().is_ok())
      << backend.init_status().to_string();
  auto id = backend.put("nested-data");
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  auto back = backend.get(id.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "nested-data");
}

TEST_F(DurabilityTest, DirectoryCreationFailureSurfacesEverywhere) {
  FaultingFsOps fs;
  fs.add_rule({FsOp::kMkdir, "", FsFaultKind::kError, EACCES});
  DiskBackend backend(kDir + "/denied", &fs);
  EXPECT_FALSE(backend.init_status().is_ok());
  // Puts fail fast with the construction error, not a per-file surprise.
  EXPECT_FALSE(backend.put("x").is_ok());

  // And the manager exposes it so from_config can refuse to boot.
  FaultingFsOps manager_fs;
  manager_fs.add_rule({FsOp::kMkdir, "", FsFaultKind::kError, EACCES});
  ManualClock clock(from_seconds(1.0));
  ManagerOptions mo;
  mo.limits = {100, 0};
  mo.disk_dir = kDir + "/denied2";
  mo.fs_ops = &manager_fs;
  CacheManager manager(0, 1, mo, &clock);
  EXPECT_FALSE(manager.storage_status().is_ok());
}

// ---- put failure modes ----

TEST_F(DurabilityTest, PutFailureLeavesNoFileBehind) {
  for (const int error_no : {EIO, ENOSPC}) {
    std::filesystem::remove_all(kDir);
    FaultingFsOps fs;
    DiskBackend backend(kDir, &fs);
    ASSERT_TRUE(backend.init_status().is_ok());
    fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, error_no});

    auto id = backend.put("doomed-data", fnv1a64("GET /k"));
    ASSERT_FALSE(id.is_ok());
    EXPECT_EQ(id.status().code(), StatusCode::kIoError);
    EXPECT_EQ(backend.bytes_stored(), 0u);
    // The failed write's temp file is unlinked; nothing reaches a live name.
    EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
    EXPECT_EQ(count_files_with_extension(kDir, ".cache"), 0u);
  }
}

TEST_F(DurabilityTest, ShortWritesAreRetriedToCompletion) {
  FaultingFsOps fs;
  DiskBackend backend(kDir, &fs);
  ASSERT_TRUE(backend.init_status().is_ok());
  // Every write delivers only half its bytes; the put loop must keep going.
  FsFaultRule rule;
  rule.op = FsOp::kWrite;
  rule.kind = FsFaultKind::kShortWrite;
  rule.count = 3;
  fs.add_rule(rule);

  const std::string data(1000, 'z');
  auto id = backend.put(data, fnv1a64("GET /short"));
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  EXPECT_GE(fs.faults_injected(), 3u);
  auto back = backend.get(id.value());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), data);
}

// ---- read-side integrity ----

TEST_F(DurabilityTest, GetDetectsBitFlipOnDisk) {
  DiskBackend backend(kDir);
  auto id = backend.put("precious-bytes", fnv1a64("GET /flip"));
  ASSERT_TRUE(id.is_ok());

  const std::string path = backend.path_for(id.value());
  std::string contents = read_whole_file(path);
  contents[kCacheHeaderSize + 2] ^= 0x10;  // silent media corruption
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  auto back = backend.get(id.value());
  ASSERT_FALSE(back.is_ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
}

TEST_F(DurabilityTest, AdoptRejectsCorruptPayloadOfCorrectSize) {
  const std::uint64_t key_hash = fnv1a64("GET /adopt");
  const std::string data = "adoptable-content";
  StorageId id;
  std::string path;
  {
    DiskBackend backend(kDir);
    auto put = backend.put(data, key_hash);
    ASSERT_TRUE(put.is_ok());
    id = put.value();
    path = backend.path_for(id);
    backend.set_retain_on_destruction(true);
  }
  // Flip one payload byte in place: the size check cannot see this — only
  // the CRC can.
  std::string contents = read_whole_file(path);
  ASSERT_EQ(contents.size(), kCacheHeaderSize + data.size());
  contents[kCacheHeaderSize] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  DiskBackend backend(kDir);
  const auto st = backend.adopt(id, data.size(), key_hash);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kCorrupt);
  // Quarantined, not serving and not deleted (postmortem evidence).
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_EQ(backend.scrub().quarantined, 1u);
}

// ---- crash simulation ----

TEST_F(DurabilityTest, CrashDuringPutThenRestartScrubsDebris) {
  FaultingFsOps fs;
  const std::uint64_t key_hash = fnv1a64("GET /survivor");
  StorageId survivor_id;
  {
    DiskBackend backend(kDir, &fs);
    auto put = backend.put("survivor-bytes", key_hash);
    ASSERT_TRUE(put.is_ok());
    survivor_id = put.value();

    // The process "dies" during the payload write of the next put: the
    // header made it to the temp file, the payload only partially, and every
    // later filesystem operation fails (including the cleanup unlink — a
    // dead process cleans nothing).
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    crash.skip = 1;
    fs.add_rule(crash);
    auto torn = backend.put("torn-bytes-never-committed", fnv1a64("GET /torn"));
    ASSERT_FALSE(torn.is_ok());
    EXPECT_TRUE(fs.crashed());
    backend.set_retain_on_destruction(true);
  }
  // The torn temp file is still on disk, exactly as after SIGKILL.
  ASSERT_EQ(count_files_with_extension(kDir, ".tmp"), 1u);

  // Restart: new backend over the same directory.
  fs.reset_crash();
  fs.clear();
  DiskBackend backend(kDir, &fs);
  ASSERT_TRUE(backend.adopt(survivor_id, 14, key_hash).is_ok());
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.adopted, 1u);
  EXPECT_EQ(report.temps_removed, 1u);
  EXPECT_EQ(report.orphans_removed, 0u);
  EXPECT_EQ(report.quarantined, 0u);

  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
  auto back = backend.get(survivor_id);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "survivor-bytes");
}

// ---- manager-level degradation and checkpointing ----

class ManagerDurabilityTest : public DurabilityTest {
 protected:
  ManagerOptions base_options() {
    ManagerOptions mo;
    mo.limits = {100, 0};
    mo.disk_dir = kDir;
    RuleDecision d;
    d.cacheable = true;
    d.ttl_seconds = 600.0;
    mo.rules.add_rule("/cgi-bin/*", d);
    return mo;
  }

  /// Runs one miss-then-complete cycle for `target`.
  void run_request(CacheManager& manager, const std::string& target,
                   const std::string& body) {
    http::Uri uri;
    ASSERT_TRUE(http::parse_uri(target, &uri));
    auto lookup = manager.lookup(http::Method::kGet, uri);
    ASSERT_NE(lookup.outcome, LookupOutcome::kUncacheable) << target;
    if (lookup.outcome == LookupOutcome::kHit) return;
    cgi::CgiOutput out;
    out.success = true;
    out.body = body;
    out.content_type = "text/html";
    manager.complete(http::Method::kGet, uri, lookup.rule, out, 1.0);
  }

  LookupResult do_lookup(CacheManager& manager, const std::string& target) {
    http::Uri uri;
    EXPECT_TRUE(http::parse_uri(target, &uri));
    return manager.lookup(http::Method::kGet, uri);
  }
};

TEST_F(ManagerDurabilityTest, DegradesAfterConsecutiveDiskFailuresAndProbesBack) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  mo.disk_failure_threshold = 2;
  mo.degraded_probe_every = 3;
  ManualClock clock(from_seconds(10.0));
  CacheManager manager(0, 1, mo, &clock);

  fs.add_rule({FsOp::kWrite, "", FsFaultKind::kError, EIO});
  run_request(manager, "/cgi-bin/f1", "b1");  // fails: disk_errors 1
  EXPECT_FALSE(manager.store_degraded());
  run_request(manager, "/cgi-bin/f2", "b2");  // fails: threshold reached
  EXPECT_TRUE(manager.store_degraded());

  // First degraded attempt is the probe (still failing), the next two are
  // skipped without touching the disk at all.
  run_request(manager, "/cgi-bin/f3", "b3");
  run_request(manager, "/cgi-bin/f4", "b4");
  run_request(manager, "/cgi-bin/f5", "b5");
  auto stats = manager.stats();
  EXPECT_EQ(stats.disk_errors, 3u);
  EXPECT_EQ(stats.degraded_skips, 2u);
  EXPECT_EQ(stats.store_degraded, 1u);
  EXPECT_EQ(stats.inserts, 0u);

  // The disk comes back; the next probe succeeds and caching resumes.
  fs.clear();
  run_request(manager, "/cgi-bin/f6", "b6");  // probe: succeeds
  EXPECT_FALSE(manager.store_degraded());
  run_request(manager, "/cgi-bin/f7", "b7");
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/f7").outcome, LookupOutcome::kHit);
  stats = manager.stats();
  EXPECT_EQ(stats.store_degraded, 0u);
  EXPECT_GE(stats.inserts, 2u);
}

TEST_F(ManagerDurabilityTest, CheckpointsRideThePurgeTick) {
  ManagerOptions mo = base_options();
  mo.state_file = kManifest;
  mo.checkpoint_interval_seconds = 10.0;
  ManualClock clock(from_seconds(100.0));
  CacheManager manager(0, 1, mo, &clock);

  // Checkpointing is gated until the warm restore has run (the purge daemon
  // must never overwrite the manifest the restore is about to read).
  manager.purge_expired();
  EXPECT_EQ(manager.stats().checkpoints, 0u);
  auto first_boot = manager.restore_state(kManifest);
  EXPECT_EQ(first_boot.status().code(), StatusCode::kNotFound);

  run_request(manager, "/cgi-bin/ckpt", "checkpointed-body");
  manager.purge_expired();  // first post-restore tick always checkpoints
  EXPECT_EQ(manager.stats().checkpoints, 1u);
  EXPECT_TRUE(std::filesystem::exists(kManifest));

  manager.purge_expired();  // interval not elapsed: no new checkpoint
  EXPECT_EQ(manager.stats().checkpoints, 1u);

  clock.advance(from_seconds(11.0));
  manager.purge_expired();
  EXPECT_EQ(manager.stats().checkpoints, 2u);

  // The checkpointed manifest restores in a fresh process without any
  // explicit save_state on the first manager.
  ManualClock clock2(from_seconds(7.0));
  CacheManager restored(0, 1, mo, &clock2);
  auto count = restored.restore_state(kManifest);
  ASSERT_TRUE(count.is_ok()) << count.status().to_string();
  EXPECT_EQ(count.value(), 1u);
  EXPECT_EQ(do_lookup(restored, "/cgi-bin/ckpt").outcome, LookupOutcome::kHit);
}

// ---- the acceptance scenario from the issue ----
//
// Crash injected mid-put, node restarts over the same directory, one
// manifest-referenced file torn in place. After restore + scrub: the torn
// entry is a clean miss, every other entry serves CRC-verified bytes with a
// rebased TTL, and no temp or orphan files remain.
TEST_F(ManagerDurabilityTest, CrashRestartScrubAcceptance) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  ManualClock clock(from_seconds(1000.0));
  {
    CacheManager manager(0, 1, mo, &clock);
    run_request(manager, "/cgi-bin/a", "body-a");
    run_request(manager, "/cgi-bin/b", "body-b");
    run_request(manager, "/cgi-bin/c", "body-c");
    ASSERT_TRUE(manager.save_state(kManifest).is_ok());

    // SIGKILL arrives during /cgi-bin/d's payload write.
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    crash.skip = 1;
    fs.add_rule(crash);
    run_request(manager, "/cgi-bin/d", "body-d-never-durable");
    EXPECT_TRUE(fs.crashed());
    EXPECT_EQ(manager.stats().disk_errors, 1u);
  }
  ASSERT_EQ(count_files_with_extension(kDir, ".tmp"), 1u);

  // While the node was down, /cgi-bin/c's file (insert order: id 3) was
  // truncated — a torn sector the atomic rename could not have produced.
  const std::string torn_path = kDir + "/swala-3.cache";
  ASSERT_TRUE(std::filesystem::exists(torn_path));
  std::filesystem::resize_file(
      torn_path, std::filesystem::file_size(torn_path) - 3);

  // Restart: fresh manager, fresh clock epoch, same directory.
  fs.reset_crash();
  fs.clear();
  ManualClock restart_clock(from_seconds(50.0));
  CacheManager manager(0, 1, mo, &restart_clock);
  auto restored = manager.restore_state(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 2u);

  const ScrubReport scrub = manager.last_scrub();
  EXPECT_EQ(scrub.adopted, 2u);
  EXPECT_EQ(scrub.quarantined, 1u);
  EXPECT_EQ(scrub.temps_removed, 1u);
  EXPECT_EQ(scrub.orphans_removed, 0u);

  // Survivors serve their exact bytes; the torn entry is a clean miss.
  auto a = do_lookup(manager, "/cgi-bin/a");
  ASSERT_EQ(a.outcome, LookupOutcome::kHit);
  EXPECT_EQ(a.result.data, "body-a");
  auto b = do_lookup(manager, "/cgi-bin/b");
  ASSERT_EQ(b.outcome, LookupOutcome::kHit);
  EXPECT_EQ(b.result.data, "body-b");
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/c").outcome,
            LookupOutcome::kMissMustExecute);
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/d").outcome,
            LookupOutcome::kMissMustExecute);

  // TTLs were rebased against the restart clock.
  auto meta = manager.directory().lookup("GET /cgi-bin/a");
  ASSERT_TRUE(meta.has_value());
  const double remaining =
      to_seconds(meta->expire_time - restart_clock.now());
  EXPECT_NEAR(remaining, 600.0, 1.0);

  // No debris: two live cache files, the quarantined one renamed aside.
  EXPECT_EQ(count_files_with_extension(kDir, ".tmp"), 0u);
  EXPECT_EQ(count_files_with_extension(kDir, ".cache"), 2u);
  EXPECT_EQ(count_files_with_extension(kDir, ".corrupt"), 1u);
}

// ---- DiskBackend erase-failure accounting ----

TEST_F(DurabilityTest, DiskBackendCountsEraseFailures) {
  FaultingFsOps fs;
  DiskBackend backend(kDir, &fs);
  auto id1 = backend.put("one", fnv1a64("k1"));
  auto id2 = backend.put("two", fnv1a64("k2"));
  ASSERT_TRUE(id1.is_ok());
  ASSERT_TRUE(id2.is_ok());

  fs.add_rule({FsOp::kUnlink, ".cache", FsFaultKind::kError, EIO});
  backend.erase(id1.value());
  StorageCounters c = backend.counters();
  EXPECT_EQ(std::string(c.backend), "files");
  EXPECT_EQ(c.erase_errors, 1u);
  EXPECT_EQ(c.consecutive_erase_failures, 1u);

  // A successful unlink ends the consecutive run; the total stays.
  fs.clear();
  backend.erase(id2.value());
  c = backend.counters();
  EXPECT_EQ(c.erase_errors, 1u);
  EXPECT_EQ(c.consecutive_erase_failures, 0u);
}

TEST_F(ManagerDurabilityTest, EraseFailuresDegradeTheStore) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  mo.disk_failure_threshold = 3;
  ManualClock clock(from_seconds(10.0));
  CacheManager manager(0, 1, mo, &clock);
  run_request(manager, "/cgi-bin/e1", "b1");
  run_request(manager, "/cgi-bin/e2", "b2");
  run_request(manager, "/cgi-bin/e3", "b3");

  // The disk starts failing unlinks: the purge tick's erases leak space,
  // which must trip the same degradation breaker as put failures.
  fs.add_rule({FsOp::kUnlink, ".cache", FsFaultKind::kError, EIO});
  clock.advance(from_seconds(601.0));  // rule TTL is 600s
  manager.purge_expired();
  EXPECT_TRUE(manager.store_degraded());
  EXPECT_EQ(manager.storage_counters().erase_errors, 3u);
}

// ---- volume backend: format, flush, recovery walk ----

VolumeOptions small_volume(std::uint64_t slots = 16) {
  VolumeOptions vo;
  vo.segment_bytes = 64 * 1024;
  vo.volume_bytes = slots * vo.segment_bytes;
  vo.write_buffer_bytes = 8 * 1024;
  vo.flush_interval_ms = 3600 * 1000;  // flush only on buffer-full or sync()
  return vo;
}

TEST_F(DurabilityTest, VolumePutGetRoundtripAndRestartAdopts) {
  FaultingFsOps fs;
  ManualClock clock(0);
  const std::uint64_t h = fnv1a64("GET /cgi-bin/v");
  StorageId id = 0;
  {
    VolumeBackend backend(kDir, small_volume(), &fs, &clock);
    ASSERT_TRUE(backend.init_status().is_ok())
        << backend.init_status().to_string();
    auto put = backend.put("volume-bytes", h);
    ASSERT_TRUE(put.is_ok()) << put.status().to_string();
    id = put.value();
    // Readable straight from the write buffer, before any flush.
    auto pre = backend.get(id);
    ASSERT_TRUE(pre.is_ok());
    EXPECT_EQ(pre.value(), "volume-bytes");
    ASSERT_TRUE(backend.sync().is_ok());
    // And still readable once it lives on disk.
    auto post = backend.get(id);
    ASSERT_TRUE(post.is_ok());
    EXPECT_EQ(post.value(), "volume-bytes");
    backend.set_retain_on_destruction(true);
  }
  VolumeBackend backend(kDir, small_volume(), &fs, &clock);
  ASSERT_TRUE(backend.init_status().is_ok());
  ASSERT_TRUE(backend.adopt(id, 12, h).is_ok());
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.adopted, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.orphans_removed, 0u);
  auto back = backend.get(id);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "volume-bytes");
  EXPECT_EQ(backend.counters().index_mismatches, 0u);
}

TEST_F(DurabilityTest, VolumeCrashMidFlushTruncatesTornTailOnly) {
  FaultingFsOps fs;
  ManualClock clock(0);
  std::vector<StorageId> ids;
  {
    VolumeBackend backend(kDir, small_volume(), &fs, &clock);
    for (int i = 0; i < 4; ++i) {
      auto put = backend.put("payload-" + std::to_string(i),
                             fnv1a64("k" + std::to_string(i)));
      ASSERT_TRUE(put.is_ok());
      ids.push_back(put.value());
    }
    ASSERT_TRUE(backend.sync().is_ok());  // the four records are durable

    // The process dies halfway through the next flush group's pwrite: the
    // oversized record forces an immediate flush, and only a prefix lands.
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    fs.add_rule(crash);
    auto torn = backend.put(std::string(9000, 'x'), fnv1a64("torn"));
    ASSERT_FALSE(torn.is_ok());
    EXPECT_TRUE(fs.crashed());
    backend.set_retain_on_destruction(true);
  }
  fs.reset_crash();
  fs.clear();
  VolumeBackend backend(kDir, small_volume(), &fs, &clock);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(
        backend.adopt(ids[i], 9, fnv1a64("k" + std::to_string(i))).is_ok())
        << "record " << i;
  }
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.adopted, 4u);
  EXPECT_EQ(report.quarantined, 0u);  // nothing valid was quarantined
  EXPECT_EQ(backend.counters().torn_tail_truncated, 1u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto back = backend.get(ids[i]);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), "payload-" + std::to_string(i));
  }
}

TEST_F(DurabilityTest, VolumeEnospcDuringPreallocationFailsFast) {
  FaultingFsOps fs;
  fs.add_rule({FsOp::kTruncate, "", FsFaultKind::kError, ENOSPC});
  ManualClock clock(0);
  VolumeBackend backend(kDir, small_volume(), &fs, &clock);
  EXPECT_FALSE(backend.init_status().is_ok());
  EXPECT_FALSE(backend.put("x", 1).is_ok());
}

TEST_F(DurabilityTest, VolumeCorruptRecordSkippedWithResync) {
  FaultingFsOps fs;
  ManualClock clock(0);
  // Fill slot 0 past capacity so it seals (10 × 6048-byte records fit in a
  // 64 KiB segment; the 11th opens slot 1), then corrupt record #2 of the
  // sealed segment in place.
  constexpr std::size_t kPayload = 6000;
  constexpr std::size_t kRecord = kPayload + kVolumeRecordHeaderSize;
  std::vector<StorageId> ids;
  {
    VolumeBackend backend(kDir, small_volume(), &fs, &clock);
    for (int i = 0; i < 11; ++i) {
      auto put = backend.put(std::string(kPayload, 'a' + (i % 26)),
                             fnv1a64("c" + std::to_string(i)));
      ASSERT_TRUE(put.is_ok());
      ids.push_back(put.value());
    }
    ASSERT_TRUE(backend.sync().is_ok());
    backend.set_retain_on_destruction(true);
  }
  {
    // Bit rot in the middle of record index 2's payload (slot 0).
    std::fstream f(kDir + "/volume.swala",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    const std::size_t off =
        kVolumeSegmentHeaderSize + 2 * kRecord + kVolumeRecordHeaderSize + 10;
    f.seekp(static_cast<std::streamoff>(off));
    f.put('\xFF');
  }
  VolumeBackend backend(kDir, small_volume(), &fs, &clock);
  std::size_t adopted = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto st =
        backend.adopt(ids[i], kPayload, fnv1a64("c" + std::to_string(i)));
    if (st.is_ok()) ++adopted;
  }
  // Every record except the rotten one adopts; the walk resynced past it.
  EXPECT_EQ(adopted, 10u);
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.adopted, 10u);
  EXPECT_EQ(report.quarantined, 1u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 2) continue;
    auto back = backend.get(ids[i]);
    ASSERT_TRUE(back.is_ok()) << "record " << i;
    EXPECT_EQ(back.value(), std::string(kPayload, 'a' + (i % 26)));
  }
}

TEST_F(DurabilityTest, VolumeCompactionReclaimsErasedSpace) {
  FaultingFsOps fs;
  ManualClock clock(0);
  // 3 slots × 64 KiB but a rolling live set of one record: without
  // compaction the 50 × 6048-byte inserts (~295 KiB) could not fit.
  VolumeBackend backend(kDir, small_volume(3), &fs, &clock);
  ASSERT_TRUE(backend.init_status().is_ok());
  StorageId prev = 0;
  StorageId last = 0;
  for (int i = 0; i < 50; ++i) {
    auto put = backend.put(std::string(6000, 'z'),
                           fnv1a64("roll" + std::to_string(i)));
    ASSERT_TRUE(put.is_ok()) << "insert " << i << ": "
                             << put.status().to_string();
    if (prev != 0) backend.erase(prev);
    prev = last = put.value();
  }
  EXPECT_GE(backend.counters().compactions, 1u);
  auto back = backend.get(last);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), std::string(6000, 'z'));
}

TEST_F(DurabilityTest, VolumeCrashMidCompactionLosesNoSyncedRecord) {
  FaultingFsOps fs;
  ManualClock clock(0);
  const std::uint64_t h1 = fnv1a64("keeper");
  StorageId keeper = 0;
  {
    // Slot 0: one keeper plus nine erased records; then keep inserting
    // until compaction relocates the keeper, and crash on the next write.
    VolumeBackend backend(kDir, small_volume(3), &fs, &clock);
    auto put = backend.put(std::string(6000, 'K'), h1);
    ASSERT_TRUE(put.is_ok());
    keeper = put.value();
    std::vector<StorageId> doomed;
    for (int i = 0; i < 9; ++i) {
      auto p = backend.put(std::string(6000, 'd'),
                           fnv1a64("doomed" + std::to_string(i)));
      ASSERT_TRUE(p.is_ok());
      doomed.push_back(p.value());
    }
    ASSERT_TRUE(backend.sync().is_ok());
    for (const StorageId id : doomed) backend.erase(id);
    for (int i = 0; i < 40 && backend.counters().compactions == 0; ++i) {
      auto p = backend.put(std::string(6000, 'f'),
                           fnv1a64("fill" + std::to_string(i)));
      ASSERT_TRUE(p.is_ok());
    }
    ASSERT_GE(backend.counters().compactions, 1u);
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    fs.add_rule(crash);
    (void)backend.sync();  // tears whatever the compactor left buffered
    backend.set_retain_on_destruction(true);
  }
  fs.reset_crash();
  fs.clear();
  // The keeper was durable before the compaction started; whichever copy
  // the crash left behind (the original at the old seq or the relocated one
  // at the new seq) must adopt and verify.
  VolumeBackend backend(kDir, small_volume(3), &fs, &clock);
  ASSERT_TRUE(backend.adopt(keeper, 6000, h1).is_ok());
  const ScrubReport report = backend.scrub();
  EXPECT_EQ(report.quarantined, 0u);
  auto back = backend.get(keeper);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), std::string(6000, 'K'));
}

TEST_F(DurabilityTest, VolumeSidecarIndexMismatchIsCounted) {
  FaultingFsOps fs;
  ManualClock clock(0);
  std::vector<StorageId> ids;
  {
    VolumeBackend backend(kDir, small_volume(), &fs, &clock);
    for (int i = 0; i < 2; ++i) {
      auto put = backend.put("sidecar-" + std::to_string(i),
                             fnv1a64("s" + std::to_string(i)));
      ASSERT_TRUE(put.is_ok());
      ids.push_back(put.value());
    }
    ASSERT_TRUE(backend.sync().is_ok());
    backend.set_retain_on_destruction(true);
  }
  {
    // The sidecar diverges from the volume (e.g. lost its last update).
    std::ofstream out(kDir + "/volume.idx", std::ios::trunc);
    out << "swala-volindex 1\n" << ids[0] << " 999999 5\n";
  }
  VolumeBackend backend(kDir, small_volume(), &fs, &clock);
  EXPECT_GE(backend.counters().index_mismatches, 1u);
  // The recovery walk is authoritative: both records still adopt and read.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(
        backend.adopt(ids[i], 9, fnv1a64("s" + std::to_string(i))).is_ok());
    auto back = backend.get(ids[i]);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), "sidecar-" + std::to_string(i));
  }
}

// ---- manager-level acceptance in volume mode ----

TEST_F(ManagerDurabilityTest, VolumeCrashRestartScrubAcceptance) {
  FaultingFsOps fs;
  ManagerOptions mo = base_options();
  mo.fs_ops = &fs;
  mo.store = StoreBackendKind::kVolume;
  mo.volume = small_volume();
  ManualClock clock(from_seconds(1000.0));
  {
    CacheManager manager(0, 1, mo, &clock);
    ASSERT_TRUE(manager.storage_status().is_ok());
    run_request(manager, "/cgi-bin/a", "body-a");
    run_request(manager, "/cgi-bin/b", "body-b");
    run_request(manager, "/cgi-bin/c", "body-c");
    // save_state syncs the volume before writing the manifest, so every
    // manifest entry references durable bytes.
    ASSERT_TRUE(manager.save_state(kManifest).is_ok());

    // /cgi-bin/d is accepted into the write buffer, then the process dies
    // before the buffered tail reaches the disk.
    run_request(manager, "/cgi-bin/d", "body-d-never-durable");
    FsFaultRule crash;
    crash.op = FsOp::kWrite;
    crash.kind = FsFaultKind::kCrash;
    fs.add_rule(crash);
  }
  fs.reset_crash();
  fs.clear();
  ManualClock restart_clock(from_seconds(50.0));
  CacheManager manager(0, 1, mo, &restart_clock);
  auto restored = manager.restore_state(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 3u);

  const ScrubReport scrub = manager.last_scrub();
  EXPECT_EQ(scrub.adopted, 3u);
  EXPECT_EQ(scrub.quarantined, 0u);
  EXPECT_EQ(std::string(manager.storage_counters().backend), "volume");

  for (const auto& [target, body] :
       {std::pair<std::string, std::string>{"/cgi-bin/a", "body-a"},
        {"/cgi-bin/b", "body-b"},
        {"/cgi-bin/c", "body-c"}}) {
    auto hit = do_lookup(manager, target);
    ASSERT_EQ(hit.outcome, LookupOutcome::kHit) << target;
    EXPECT_EQ(hit.result.data, body);
  }
  EXPECT_EQ(do_lookup(manager, "/cgi-bin/d").outcome,
            LookupOutcome::kMissMustExecute);
}

}  // namespace
}  // namespace swala::core
