// End-to-end integration: a multi-node Swala deployment in one process —
// real HTTP servers, real cache managers, real inter-node TCP cooperation —
// exercised through real HTTP clients. This is the full Figure-1/Figure-2
// architecture in motion.
#include <gtest/gtest.h>

#include <thread>

#include "cgi/scripted.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/swala_server.h"

namespace swala {
namespace {

core::ManagerOptions node_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {1000, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

std::shared_ptr<cgi::HandlerRegistry> make_registry(
    std::shared_ptr<cgi::ScriptedCgi>* out_handler = nullptr) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions opts;
  opts.mode = cgi::ComputeMode::kSleep;
  opts.service_seconds = 0.02;  // small but measurable "CGI work"
  opts.output_bytes = 512;
  auto handler = std::make_shared<cgi::ScriptedCgi>(opts);
  registry->mount("/cgi-bin/", handler);
  if (out_handler != nullptr) *out_handler = handler;
  return registry;
}

bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 300; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 3;

  void SetUp() override {
    cluster_ = std::make_unique<cluster::LocalCluster>(kNodes, node_options);
    for (std::size_t i = 0; i < kNodes; ++i) {
      std::shared_ptr<cgi::ScriptedCgi> handler;
      auto registry = make_registry(&handler);
      handlers_.push_back(std::move(handler));
      server::SwalaServerOptions opts;
      opts.request_threads = 4;
      servers_.push_back(std::make_unique<server::SwalaServer>(
          opts, std::move(registry), &cluster_->manager(i)));
      ASSERT_TRUE(servers_.back()->start().is_ok());
    }
  }

  void TearDown() override {
    for (auto& server : servers_) server->stop();
    cluster_->stop();
  }

  std::unique_ptr<cluster::LocalCluster> cluster_;
  std::vector<std::unique_ptr<server::SwalaServer>> servers_;
  std::vector<std::shared_ptr<cgi::ScriptedCgi>> handlers_;
};

TEST_F(IntegrationTest, RemoteHitAcrossHttpNodes) {
  // Warm node 0 through real HTTP.
  http::HttpClient warm(servers_[0]->address());
  auto miss = warm.get("/cgi-bin/q?id=42");
  ASSERT_TRUE(miss.is_ok()) << miss.status().to_string();
  EXPECT_EQ(miss.value().headers.get("X-Swala-Cache"), "miss");

  // Wait for the insert broadcast to reach node 1's directory.
  ASSERT_TRUE(eventually([&] {
    return cluster_->manager(1)
        .directory()
        .lookup("GET /cgi-bin/q?id=42")
        .has_value();
  }));

  // The same request on node 1 is served from node 0's cache.
  http::HttpClient client(servers_[1]->address());
  auto hit = client.get("/cgi-bin/q?id=42");
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value().headers.get("X-Swala-Cache"), "hit-remote");
  EXPECT_EQ(hit.value().body, miss.value().body);

  // Node 1 never executed the CGI.
  EXPECT_EQ(handlers_[1]->execution_count(), 0u);
  EXPECT_EQ(handlers_[0]->execution_count(), 1u);
}

TEST_F(IntegrationTest, EachNodeCachesItsOwnWork) {
  for (std::size_t i = 0; i < kNodes; ++i) {
    http::HttpClient client(servers_[i]->address());
    const std::string target = "/cgi-bin/own?node=" + std::to_string(i);
    auto miss = client.get(target);
    ASSERT_TRUE(miss.is_ok());
    EXPECT_EQ(miss.value().headers.get("X-Swala-Cache"), "miss");
    auto hit = client.get(target);
    ASSERT_TRUE(hit.is_ok());
    EXPECT_EQ(hit.value().headers.get("X-Swala-Cache"), "hit-local");
  }
}

TEST_F(IntegrationTest, MixedLoadAcrossNodesReusesEntries) {
  // Warm a pool of distinct requests through node 0, then hammer the same
  // pool in parallel across all nodes: nothing should re-execute, and the
  // other nodes should serve via remote fetches from node 0's cache.
  constexpr int kDistinct = 12;
  constexpr int kRounds = 3;
  {
    http::HttpClient warm(servers_[0]->address());
    for (int d = 0; d < kDistinct; ++d) {
      auto resp = warm.get("/cgi-bin/pool?d=" + std::to_string(d));
      ASSERT_TRUE(resp.is_ok());
    }
  }
  ASSERT_TRUE(eventually([&] {
    for (std::size_t n = 1; n < kNodes; ++n) {
      if (cluster_->manager(n).directory().size() <
          static_cast<std::size_t>(kDistinct)) {
        return false;
      }
    }
    return true;
  }));

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    for (std::size_t n = 0; n < kNodes; ++n) {
      threads.emplace_back([&, n] {
        http::HttpClient client(servers_[n]->address());
        for (int d = 0; d < kDistinct; ++d) {
          auto resp = client.get("/cgi-bin/pool?d=" + std::to_string(d));
          EXPECT_TRUE(resp.is_ok());
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  std::uint64_t executions = 0;
  for (const auto& handler : handlers_) executions += handler->execution_count();
  EXPECT_EQ(executions, static_cast<std::uint64_t>(kDistinct))
      << "warm entries must satisfy every later request";

  std::uint64_t remote_hits = 0;
  for (std::size_t n = 0; n < kNodes; ++n) {
    remote_hits += cluster_->manager(n).stats().remote_hits;
  }
  EXPECT_GT(remote_hits, 0u);
}

TEST_F(IntegrationTest, StaticFilesBypassCache) {
  http::HttpClient client(servers_[0]->address());
  auto resp = client.get("/not-cgi/missing.html");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 404);
  EXPECT_EQ(cluster_->manager(0).stats().lookups, 0u);
}

}  // namespace
}  // namespace swala
