// Tests for the cluster layer: wire-protocol roundtrips (including a
// randomized property sweep), framing over real sockets, and LocalCluster
// integration: broadcast visibility, remote fetch, false-hit handling.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "cluster/framing.h"
#include "cluster/local_cluster.h"
#include "cluster/message.h"
#include "common/random.h"

namespace swala::cluster {
namespace {

core::EntryMeta sample_meta() {
  core::EntryMeta m;
  m.key = "GET /cgi-bin/q?x=1";
  m.owner = 3;
  m.size_bytes = 12345;
  m.cost_seconds = 2.75;
  m.insert_time = 111;
  m.expire_time = 222;
  m.last_access = 333;
  m.access_count = 7;
  m.content_type = "text/plain";
  m.http_status = 200;
  m.version = 9;
  return m;
}

void expect_meta_eq(const core::EntryMeta& a, const core::EntryMeta& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_DOUBLE_EQ(a.cost_seconds, b.cost_seconds);
  EXPECT_EQ(a.insert_time, b.insert_time);
  EXPECT_EQ(a.expire_time, b.expire_time);
  EXPECT_EQ(a.last_access, b.last_access);
  EXPECT_EQ(a.access_count, b.access_count);
  EXPECT_EQ(a.content_type, b.content_type);
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.version, b.version);
}

Message roundtrip(const Message& msg) {
  const std::string frame = encode_message(msg);
  // Strip the 4-byte length prefix; decode_message takes the payload.
  auto decoded = decode_message(std::string_view(frame).substr(4));
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  return decoded.value();
}

TEST(MessageTest, HelloRoundtrip) {
  const Message out = roundtrip(Message::hello(5));
  EXPECT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(out.sender, 5u);
}

TEST(MessageTest, InsertRoundtrip) {
  const Message out = roundtrip(Message::insert(2, sample_meta()));
  EXPECT_EQ(out.type, MsgType::kInsert);
  EXPECT_EQ(out.sender, 2u);
  expect_meta_eq(out.meta, sample_meta());
}

TEST(MessageTest, EraseRoundtrip) {
  const Message out = roundtrip(Message::erase(1, "GET /k", 42));
  EXPECT_EQ(out.type, MsgType::kErase);
  EXPECT_EQ(out.key, "GET /k");
  EXPECT_EQ(out.version, 42u);
}

TEST(MessageTest, FetchReqRoundtrip) {
  const Message out = roundtrip(Message::fetch_req(0, "GET /f"));
  EXPECT_EQ(out.type, MsgType::kFetchReq);
  EXPECT_EQ(out.key, "GET /f");
}

TEST(MessageTest, FetchRespRoundtrips) {
  const Message found =
      roundtrip(Message::fetch_resp_found(4, sample_meta(), "the data"));
  EXPECT_TRUE(found.found);
  EXPECT_EQ(found.data, "the data");
  expect_meta_eq(found.meta, sample_meta());

  const Message miss = roundtrip(Message::fetch_resp_miss(4));
  EXPECT_FALSE(miss.found);
}

TEST(MessageTest, RejectsTruncatedPayload) {
  const std::string frame = encode_message(Message::insert(2, sample_meta()));
  const std::string_view payload = std::string_view(frame).substr(4);
  for (std::size_t cut = 1; cut < payload.size(); cut += 7) {
    EXPECT_FALSE(decode_message(payload.substr(0, cut)).is_ok())
        << "cut at " << cut << " should not decode";
  }
}

TEST(MessageTest, RejectsTrailingGarbage) {
  std::string frame = encode_message(Message::erase(1, "GET /k", 1));
  std::string payload(std::string_view(frame).substr(4));
  payload += "extra";
  EXPECT_FALSE(decode_message(payload).is_ok());
}

TEST(MessageTest, RejectsUnknownType) {
  std::string payload;
  payload.push_back(static_cast<char>(99));
  payload.append(4, '\0');
  EXPECT_FALSE(decode_message(payload).is_ok());
}

TEST(MessageTest, RandomizedMetaRoundtrip) {
  Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    core::EntryMeta m;
    m.key = "GET /cgi-bin/" + std::to_string(rng.next_u64());
    m.owner = static_cast<core::NodeId>(rng.uniform_int(0, 63));
    m.size_bytes = rng.next_u64() >> 20;
    m.cost_seconds = rng.uniform(0.0, 1000.0);
    m.insert_time = static_cast<TimeNs>(rng.next_u64() >> 1);
    m.expire_time = static_cast<TimeNs>(rng.next_u64() >> 1);
    m.last_access = static_cast<TimeNs>(rng.next_u64() >> 1);
    m.access_count = rng.next_u64() >> 32;
    m.content_type = std::string(rng.uniform_int(0, 30), 'c');
    m.http_status = static_cast<int>(rng.uniform_int(100, 599));
    m.version = rng.next_u64();
    const Message out = roundtrip(Message::insert(m.owner, m));
    expect_meta_eq(out.meta, m);
  }
}

// ---- framing over real sockets ----

TEST(FramingTest, MessagesOverTcp) {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const net::InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread sender([&] {
    auto stream = net::TcpStream::connect(addr, 2000);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_TRUE(write_message(stream.value(), Message::hello(7)).is_ok());
    ASSERT_TRUE(
        write_message(stream.value(), Message::insert(7, sample_meta())).is_ok());
    ASSERT_TRUE(
        write_message(stream.value(), Message::erase(7, "GET /k", 3)).is_ok());
  });

  auto conn = listener.value().accept(2000);
  ASSERT_TRUE(conn.is_ok());
  auto m1 = read_message(conn.value());
  ASSERT_TRUE(m1.is_ok());
  EXPECT_EQ(m1.value().type, MsgType::kHello);
  auto m2 = read_message(conn.value());
  ASSERT_TRUE(m2.is_ok());
  expect_meta_eq(m2.value().meta, sample_meta());
  auto m3 = read_message(conn.value());
  ASSERT_TRUE(m3.is_ok());
  EXPECT_EQ(m3.value().key, "GET /k");
  sender.join();
  // Clean EOF after the last message.
  auto m4 = read_message(conn.value());
  ASSERT_FALSE(m4.is_ok());
  EXPECT_EQ(m4.status().code(), StatusCode::kClosed);
}

// ---- LocalCluster integration ----

core::ManagerOptions cluster_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

/// Polls until `pred` holds or ~2 s elapse (broadcasts are asynchronous).
bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 200; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(LocalClusterTest, InsertBroadcastReachesPeers) {
  LocalCluster cluster(3, cluster_options);
  const auto uri = uri_of("/cgi-bin/shared?x=1");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  ASSERT_EQ(lookup.outcome, core::LookupOutcome::kMissMustExecute);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("payload"), 1.0);

  EXPECT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/shared?x=1") &&
           cluster.manager(2).directory().lookup("GET /cgi-bin/shared?x=1");
  }));
}

TEST(LocalClusterTest, RemoteFetchServesData) {
  LocalCluster cluster(2, cluster_options);
  const auto uri = uri_of("/cgi-bin/data");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("cooperative!"), 1.0);
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/data").has_value();
  }));

  auto hit = cluster.manager(1).lookup(http::Method::kGet, uri);
  ASSERT_EQ(hit.outcome, core::LookupOutcome::kHit);
  EXPECT_TRUE(hit.remote);
  EXPECT_EQ(hit.result.data, "cooperative!");
  EXPECT_EQ(cluster.manager(1).stats().remote_hits, 1u);
  EXPECT_GE(cluster.group(0).stats().fetches_served, 1u);
}

TEST(LocalClusterTest, EraseBroadcastReachesPeers) {
  LocalCluster cluster(2, cluster_options);
  const auto uri = uri_of("/cgi-bin/temp");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("x"), 1.0);
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/temp").has_value();
  }));

  // Owner drops the entry and broadcasts the deletion.
  cluster.manager(0).store().peek("GET /cgi-bin/temp");
  // Force an eviction path via a second insert cycle with a tiny cache is
  // complex here; use purge with TTL via direct erase broadcast instead:
  cluster.group(0).broadcast_erase(0, "GET /cgi-bin/temp", 1);
  EXPECT_TRUE(eventually([&] {
    return !cluster.manager(1)
                .directory()
                .lookup("GET /cgi-bin/temp")
                .has_value();
  }));
}

TEST(LocalClusterTest, FalseHitFallsBackCleanly) {
  LocalCluster cluster(2, cluster_options);
  const auto uri = uri_of("/cgi-bin/vanish");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("x"), 1.0);
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/vanish").has_value();
  }));

  // Delete from node 0's store WITHOUT broadcasting (simulates the race
  // window before the erase broadcast arrives).
  const_cast<core::CacheStore&>(cluster.manager(0).store())
      .erase("GET /cgi-bin/vanish");

  auto result = cluster.manager(1).lookup(http::Method::kGet, uri);
  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_EQ(cluster.manager(1).stats().false_hits, 1u);
}

TEST(LocalClusterTest, PooledFetchesReuseConnections) {
  LocalCluster cluster(2, cluster_options);
  const auto uri = uri_of("/cgi-bin/pooled");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("pooled-data"), 1.0);

  // Many back-to-back fetches over the pooled data channel.
  for (int i = 0; i < 50; ++i) {
    auto fetched = cluster.group(1).fetch_remote(0, "GET /cgi-bin/pooled");
    ASSERT_TRUE(fetched.is_ok()) << i << ": " << fetched.status().to_string();
    EXPECT_EQ(fetched.value().data, "pooled-data");
  }
  EXPECT_EQ(cluster.group(0).stats().fetches_served, 50u);
}

TEST(LocalClusterTest, PoolingDisabledStillWorks) {
  GroupOptions go;
  go.fetch_pool_size = 0;  // the original per-fetch-connection behaviour
  LocalCluster cluster(2, cluster_options, RealClock::instance(), go);
  const auto uri = uri_of("/cgi-bin/unpooled");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("d"), 1.0);
  for (int i = 0; i < 10; ++i) {
    auto fetched = cluster.group(1).fetch_remote(0, "GET /cgi-bin/unpooled");
    ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();
  }
}

TEST(LocalClusterTest, TtlEntriesPurgedAndBroadcastAcrossCluster) {
  GroupOptions go;
  go.purge_interval_seconds = 0.1;  // fast purge daemon for the test
  auto options_with_ttl = [](core::NodeId) {
    core::ManagerOptions mo;
    mo.limits = {100, 0};
    core::RuleDecision d;
    d.cacheable = true;
    d.ttl_seconds = 0.3;
    mo.rules.add_rule("/cgi-bin/*", d);
    return mo;
  };
  LocalCluster cluster(2, options_with_ttl, RealClock::instance(), go);

  const auto uri = uri_of("/cgi-bin/ephemeral");
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule,
                              ok_output("x"), 1.0);
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1)
        .directory()
        .lookup("GET /cgi-bin/ephemeral")
        .has_value();
  }));

  // The purge daemon must expire it on node 0 and broadcast the erase so
  // node 1's directory physically drops the entry (table_size counts raw
  // entries, unlike lookup which already hides expired ones).
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0).store().entry_count() == 0 &&
           cluster.manager(1).directory().table_size(0) == 0;
  }));
}

TEST(LocalClusterTest, ConcurrentInsertsConverge) {
  LocalCluster cluster(4, cluster_options);
  constexpr int kPerNode = 25;
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    threads.emplace_back([&cluster, n] {
      for (int i = 0; i < kPerNode; ++i) {
        const auto uri_str =
            "/cgi-bin/n" + std::to_string(n) + "/i" + std::to_string(i);
        http::Uri uri;
        ASSERT_TRUE(http::parse_uri(uri_str, &uri));
        auto lookup = cluster.manager(n).lookup(http::Method::kGet, uri);
        cluster.manager(n).complete(http::Method::kGet, uri, lookup.rule,
                                    ok_output("d"), 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_TRUE(eventually([&] {
    for (std::size_t n = 0; n < cluster.size(); ++n) {
      if (cluster.manager(n).directory().size() !=
          cluster.size() * kPerNode) {
        return false;
      }
    }
    return true;
  })) << "directories did not converge to " << cluster.size() * kPerNode;
}

// Same convergence invariant with update batching on (the deployment
// default): bursts coalesce into kBatch frames but every peer still ends up
// with the full directory, and the batch counter proves frames actually
// coalesced rather than the option being silently ignored.
TEST(LocalClusterTest, ConcurrentInsertsConvergeWithBatching) {
  GroupOptions batched;
  batched.batch_max_messages = 64;
  LocalCluster cluster(3, cluster_options, RealClock::instance(), batched);
  constexpr int kPerNode = 30;
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    threads.emplace_back([&cluster, n] {
      for (int i = 0; i < kPerNode; ++i) {
        const auto uri_str =
            "/cgi-bin/b" + std::to_string(n) + "/i" + std::to_string(i);
        http::Uri uri;
        ASSERT_TRUE(http::parse_uri(uri_str, &uri));
        auto lookup = cluster.manager(n).lookup(http::Method::kGet, uri);
        cluster.manager(n).complete(http::Method::kGet, uri, lookup.rule,
                                    ok_output("d"), 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_TRUE(eventually([&] {
    for (std::size_t n = 0; n < cluster.size(); ++n) {
      if (cluster.manager(n).directory().size() !=
          cluster.size() * kPerNode) {
        return false;
      }
    }
    return true;
  })) << "batched directories did not converge to "
      << cluster.size() * kPerNode;

  std::uint64_t batched_total = 0;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    batched_total += cluster.group(n).stats().batched_broadcasts;
  }
  EXPECT_GT(batched_total, 0u)
      << "no broadcast was ever coalesced despite batching enabled";
}

}  // namespace
}  // namespace swala::cluster
