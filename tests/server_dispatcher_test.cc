// Tests for the front-end dispatcher: round-robin spread, least-connections
// choice, failover on dead backends, keep-alive on the client side, and a
// full dispatched-cooperative-cluster integration.
#include <gtest/gtest.h>

#include <thread>

#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/dispatcher.h"
#include "server/swala_server.h"

namespace swala::server {
namespace {

std::shared_ptr<cgi::HandlerRegistry> make_registry(double service = 0.0) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions options;
  if (service > 0) {
    options.mode = cgi::ComputeMode::kSleep;
    options.service_seconds = service;
  }
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(options));
  return registry;
}

core::ManagerOptions open_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

TEST(DispatcherTest, RoundRobinSpreadsLoad) {
  std::vector<std::unique_ptr<SwalaServer>> backends;
  std::vector<net::InetAddress> addresses;
  for (int i = 0; i < 3; ++i) {
    SwalaServerOptions options;
    options.request_threads = 2;
    backends.push_back(
        std::make_unique<SwalaServer>(options, make_registry(), nullptr));
    ASSERT_TRUE(backends.back()->start().is_ok());
    addresses.push_back(backends.back()->address());
  }

  Dispatcher dispatcher(DispatcherOptions{}, addresses);
  ASSERT_TRUE(dispatcher.start().is_ok());
  {
    http::HttpClient client(dispatcher.address());
    for (int i = 0; i < 30; ++i) {
      auto resp = client.get("/cgi-bin/x?i=" + std::to_string(i));
      ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
      EXPECT_EQ(resp.value().status, 200);
    }
  }
  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, 30u);
  EXPECT_EQ(stats.unavailable, 0u);
  ASSERT_EQ(stats.per_backend.size(), 3u);
  for (const auto count : stats.per_backend) {
    EXPECT_EQ(count, 10u) << "round robin must spread evenly";
  }
  dispatcher.stop();
  for (auto& backend : backends) backend->stop();
}

TEST(DispatcherTest, FailoverSkipsDeadBackend) {
  SwalaServerOptions options;
  options.request_threads = 2;
  SwalaServer alive(options, make_registry(), nullptr);
  ASSERT_TRUE(alive.start().is_ok());

  // A dead address: bound then released.
  std::uint16_t dead_port;
  {
    auto dead = net::TcpListener::listen({"127.0.0.1", 0});
    ASSERT_TRUE(dead.is_ok());
    dead_port = dead.value().local_port();
  }

  DispatcherOptions dopt;
  dopt.max_attempts = 2;
  Dispatcher dispatcher(dopt, {{"127.0.0.1", dead_port}, alive.address()});
  ASSERT_TRUE(dispatcher.start().is_ok());
  {
    http::HttpClient client(dispatcher.address());
    for (int i = 0; i < 10; ++i) {
      auto resp = client.get("/cgi-bin/x");
      ASSERT_TRUE(resp.is_ok());
      EXPECT_EQ(resp.value().status, 200) << "failover must hide dead backend";
    }
  }
  EXPECT_GT(dispatcher.stats().forward_failures, 0u);
  EXPECT_EQ(dispatcher.stats().unavailable, 0u);
  dispatcher.stop();
  alive.stop();
}

TEST(DispatcherTest, AllBackendsDeadShedsWith503) {
  std::uint16_t dead_port;
  {
    auto dead = net::TcpListener::listen({"127.0.0.1", 0});
    ASSERT_TRUE(dead.is_ok());
    dead_port = dead.value().local_port();
  }
  Dispatcher dispatcher(DispatcherOptions{}, {{"127.0.0.1", dead_port}});
  ASSERT_TRUE(dispatcher.start().is_ok());
  {
    http::HttpClient client(dispatcher.address());
    auto resp = client.get("/x");
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().status, 503);
    // A shed tells the client when to come back and closes the connection.
    ASSERT_TRUE(resp.value().headers.get("Retry-After").has_value());
    ASSERT_TRUE(resp.value().headers.get("Connection").has_value());
    EXPECT_EQ(*resp.value().headers.get("Connection"), "close");
  }
  EXPECT_EQ(dispatcher.stats().unavailable, 1u);
  dispatcher.stop();
}

TEST(DispatcherTest, NoBackendsRejectedAtStart) {
  Dispatcher dispatcher(DispatcherOptions{}, {});
  EXPECT_FALSE(dispatcher.start().is_ok());
}

TEST(DispatcherTest, LeastConnectionsAvoidsBusyBackend) {
  // Backend 0 is slow (80 ms per request), backend 1 fast. With the
  // least-connections strategy and concurrent clients, the fast backend
  // must absorb clearly more requests.
  SwalaServerOptions options;
  options.request_threads = 8;
  SwalaServer slow(options, make_registry(0.08), nullptr);
  SwalaServer fast(options, make_registry(0.0), nullptr);
  ASSERT_TRUE(slow.start().is_ok());
  ASSERT_TRUE(fast.start().is_ok());

  DispatcherOptions dopt;
  dopt.strategy = DispatchStrategy::kLeastConnections;
  Dispatcher dispatcher(dopt, {slow.address(), fast.address()});
  ASSERT_TRUE(dispatcher.start().is_ok());

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&dispatcher, c] {
      http::HttpClient client(dispatcher.address());
      for (int i = 0; i < 10; ++i) {
        auto resp = client.get("/cgi-bin/x?c=" + std::to_string(c) +
                               "&i=" + std::to_string(i));
        EXPECT_TRUE(resp.is_ok());
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto stats = dispatcher.stats();
  ASSERT_EQ(stats.per_backend.size(), 2u);
  EXPECT_GT(stats.per_backend[1], stats.per_backend[0])
      << "fast backend should serve more under least-connections";
  dispatcher.stop();
  slow.stop();
  fast.stop();
}

TEST(DispatcherTest, PostBodiesForwardIntact) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  registry->mount("/cgi-bin/echo",
                  std::make_shared<cgi::LambdaCgi>(
                      [](const http::Request& req) -> Result<cgi::CgiOutput> {
                        cgi::CgiOutput out;
                        out.success = true;
                        out.body = "got:" + req.body;
                        return out;
                      }));
  SwalaServerOptions options;
  options.request_threads = 2;
  SwalaServer backend(options, registry, nullptr);
  ASSERT_TRUE(backend.start().is_ok());

  Dispatcher dispatcher(DispatcherOptions{}, {backend.address()});
  ASSERT_TRUE(dispatcher.start().is_ok());
  {
    http::HttpClient client(dispatcher.address());
    http::Request req;
    req.method = http::Method::kPost;
    req.target = "/cgi-bin/echo";
    req.version = http::Version::kHttp11;
    req.headers.set("Host", "test");
    req.body = "payload with spaces & symbols";
    req.headers.set("Content-Length", std::to_string(req.body.size()));
    auto resp = client.send(req);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_EQ(resp.value().status, 200);
    EXPECT_EQ(resp.value().body, "got:payload with spaces & symbols");
  }
  dispatcher.stop();
  backend.stop();
}

TEST(DispatcherTest, DispatchedCooperativeClusterSharesCache) {
  // The full deployment: dispatcher in front of a cooperative cluster.
  // The same CGI reached through different backends executes once.
  cluster::LocalCluster cluster(2, open_options);
  std::vector<std::unique_ptr<SwalaServer>> servers;
  std::vector<std::shared_ptr<cgi::ScriptedCgi>> handlers;
  std::vector<net::InetAddress> addresses;
  for (std::size_t i = 0; i < 2; ++i) {
    auto registry = std::make_shared<cgi::HandlerRegistry>();
    cgi::ScriptedOptions copt;
    copt.mode = cgi::ComputeMode::kSleep;
    copt.service_seconds = 0.02;
    auto handler = std::make_shared<cgi::ScriptedCgi>(copt);
    handlers.push_back(handler);
    registry->mount("/cgi-bin/", handler);
    SwalaServerOptions options;
    options.request_threads = 4;
    servers.push_back(std::make_unique<SwalaServer>(options, registry,
                                                    &cluster.manager(i)));
    ASSERT_TRUE(servers.back()->start().is_ok());
    addresses.push_back(servers.back()->address());
  }

  Dispatcher dispatcher(DispatcherOptions{}, addresses);
  ASSERT_TRUE(dispatcher.start().is_ok());
  {
    http::HttpClient client(dispatcher.address());
    auto first = client.get("/cgi-bin/shared?q=7");
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(first.value().headers.get("X-Swala-Cache"), "miss");
    // Let the insert broadcast land, then hit through the other backend.
    for (int i = 0; i < 100; ++i) {
      if (cluster.manager(0).directory().lookup("GET /cgi-bin/shared?q=7") &&
          cluster.manager(1).directory().lookup("GET /cgi-bin/shared?q=7")) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (int i = 0; i < 6; ++i) {
      auto resp = client.get("/cgi-bin/shared?q=7");
      ASSERT_TRUE(resp.is_ok());
      const auto state = resp.value().headers.get("X-Swala-Cache");
      ASSERT_TRUE(state.has_value());
      EXPECT_NE(*state, "miss") << "round " << i;
    }
  }
  EXPECT_EQ(handlers[0]->execution_count() + handlers[1]->execution_count(), 1u)
      << "one execution serves the whole dispatched cluster";
  dispatcher.stop();
  for (auto& server : servers) server->stop();
}

}  // namespace
}  // namespace swala::server
