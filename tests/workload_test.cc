// Tests for the workload library: trace I/O, the ADL synthesizer's
// calibration against the paper's published statistics, the Table-1
// analyzer, and the WebStone mix.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <unordered_set>

#include "workload/adl_synth.h"
#include "workload/analyzer.h"
#include "workload/trace.h"
#include "workload/webstone.h"

namespace swala::workload {
namespace {

// ---- trace I/O ----

Trace tiny_trace() {
  Trace t;
  t.push_back({0.0, "/cgi-bin/a?x=1", true, 2.0, 100});
  t.push_back({0.5, "/files/img.gif", false, 0.02, 5000});
  t.push_back({1.0, "/cgi-bin/a?x=1", true, 2.0, 100});
  return t;
}

TEST(TraceIoTest, StringRoundtrip) {
  const Trace original = tiny_trace();
  auto parsed = trace_from_string(trace_to_string(original));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].target, original[i].target);
    EXPECT_EQ(parsed.value()[i].is_cgi, original[i].is_cgi);
    EXPECT_DOUBLE_EQ(parsed.value()[i].service_seconds,
                     original[i].service_seconds);
    EXPECT_EQ(parsed.value()[i].response_bytes, original[i].response_bytes);
  }
}

TEST(TraceIoTest, FileRoundtrip) {
  const std::string path = "/tmp/swala_trace_test.txt";
  ASSERT_TRUE(save_trace(path, tiny_trace()).is_ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().size(), 3u);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, CommentsAndBlanksSkipped) {
  auto parsed = trace_from_string(
      "# a comment\n"
      "\n"
      "0.5 /x file 0.01 100\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(TraceIoTest, MalformedRejected) {
  EXPECT_FALSE(trace_from_string("1.0 /x file 0.01\n").is_ok());
  EXPECT_FALSE(trace_from_string("1.0 /x maybe 0.01 10\n").is_ok());
  EXPECT_FALSE(trace_from_string("abc /x file 0.01 10\n").is_ok());
  EXPECT_FALSE(load_trace("/nonexistent/trace").is_ok());
}

TEST(TraceSummaryTest, CountsCorrect) {
  const auto s = summarize(tiny_trace());
  EXPECT_EQ(s.total_requests, 3u);
  EXPECT_EQ(s.cgi_requests, 2u);
  EXPECT_EQ(s.unique_targets, 2u);
  EXPECT_EQ(s.unique_cgi_targets, 1u);
  EXPECT_DOUBLE_EQ(s.total_service_seconds, 4.02);
  EXPECT_DOUBLE_EQ(s.mean_cgi_service, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_file_service, 0.02);
  EXPECT_DOUBLE_EQ(s.max_service, 2.0);
}

// ---- ADL synthesizer calibration (the paper's §3 statistics) ----

class AdlSynthTest : public ::testing::Test {
 protected:
  static const Trace& trace() {
    static const Trace t = [] {
      AdlOptions opts;  // defaults reproduce the paper's log
      return synthesize_adl_trace(opts);
    }();
    return t;
  }
};

TEST_F(AdlSynthTest, RequestCountAndMix) {
  const auto s = summarize(trace());
  EXPECT_EQ(s.total_requests, 69337u);
  const double cgi_frac =
      static_cast<double>(s.cgi_requests) / s.total_requests;
  EXPECT_NEAR(cgi_frac, 0.413, 0.01);
}

TEST_F(AdlSynthTest, ServiceTimeShape) {
  const auto s = summarize(trace());
  // Paper: file fetch mean 0.03 s; CGI mean 1.6 s; max ~110 s; CGI = 97 %
  // of total service time.
  EXPECT_NEAR(s.mean_file_service, 0.03, 0.01);
  EXPECT_NEAR(s.mean_cgi_service, 1.6, 0.4);
  EXPECT_LE(s.max_service, 110.0 + 1e-9);
  EXPECT_GT(s.max_service, 30.0);
  EXPECT_GT(s.cgi_service_seconds / s.total_service_seconds, 0.93);
}

TEST_F(AdlSynthTest, RepetitionSavesAboutThirtyPercentAtOneSecond) {
  const auto row = analyze_threshold(trace(), 1.0);
  // Paper: 29 % of total service time saved at the 1 s threshold.
  EXPECT_GT(row.saved_percent, 20.0);
  EXPECT_LT(row.saved_percent, 45.0);
  EXPECT_GT(row.total_repeats, 1000u);
  EXPECT_GT(row.unique_repeated, 50u);
}

TEST_F(AdlSynthTest, Deterministic) {
  AdlOptions opts;
  opts.total_requests = 500;
  const Trace a = synthesize_adl_trace(opts);
  const Trace b = synthesize_adl_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].service_seconds, b[i].service_seconds);
  }
}

TEST_F(AdlSynthTest, SeedChangesTrace) {
  AdlOptions a_opts;
  a_opts.total_requests = 500;
  AdlOptions b_opts = a_opts;
  b_opts.seed = 999;
  const Trace a = synthesize_adl_trace(a_opts);
  const Trace b = synthesize_adl_trace(b_opts);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].target != b[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST_F(AdlSynthTest, ArrivalsMonotone) {
  double prev = -1.0;
  for (const auto& r : trace()) {
    EXPECT_GE(r.arrival_seconds, prev);
    prev = r.arrival_seconds;
  }
}

// ---- §5.3 request mix ----

TEST(RequestMixTest, ExactTotalsAndUniques) {
  const Trace t = synthesize_request_mix(1600, 1122, 1.0, 42);
  EXPECT_EQ(t.size(), 1600u);
  std::unordered_set<std::string> uniq;
  for (const auto& r : t) {
    EXPECT_TRUE(r.is_cgi);
    uniq.insert(r.target);
  }
  EXPECT_EQ(uniq.size(), 1122u);
  EXPECT_EQ(hit_upper_bound(t), 1600u - 1122u);
}

TEST(RequestMixTest, UniqueCappedAtTotal) {
  const Trace t = synthesize_request_mix(10, 50, 1.0, 1);
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(hit_upper_bound(t), 0u);
}

// ---- analyzer on a hand-built trace ----

TEST(AnalyzerTest, HandComputedRow) {
  Trace t;
  // Three occurrences of A (2 s), two of B (0.4 s), one of C (3 s), a file.
  t.push_back({0, "/cgi-bin/A", true, 2.0, 10});
  t.push_back({1, "/cgi-bin/B", true, 0.4, 10});
  t.push_back({2, "/cgi-bin/A", true, 2.0, 10});
  t.push_back({3, "/cgi-bin/C", true, 3.0, 10});
  t.push_back({4, "/cgi-bin/B", true, 0.4, 10});
  t.push_back({5, "/cgi-bin/A", true, 2.0, 10});
  t.push_back({6, "/f.gif", false, 0.1, 10});
  // total service = 2*3 + 0.4*2 + 3 + 0.1 = 9.9

  const auto row1 = analyze_threshold(t, 1.0);
  EXPECT_EQ(row1.long_requests, 4u);      // A,A,C,A
  EXPECT_EQ(row1.total_repeats, 2u);      // 2nd and 3rd A
  EXPECT_EQ(row1.unique_repeated, 1u);    // just A
  EXPECT_DOUBLE_EQ(row1.time_saved_seconds, 4.0);
  EXPECT_NEAR(row1.saved_percent, 100.0 * 4.0 / 9.9, 1e-9);

  const auto row0 = analyze_threshold(t, 0.0);
  EXPECT_EQ(row0.long_requests, 6u);  // all CGI
  EXPECT_EQ(row0.total_repeats, 3u);  // A x2 + B x1
  EXPECT_EQ(row0.unique_repeated, 2u);
  EXPECT_DOUBLE_EQ(row0.time_saved_seconds, 4.4);

  const auto row5 = analyze_threshold(t, 5.0);
  EXPECT_EQ(row5.long_requests, 0u);
  EXPECT_EQ(row5.total_repeats, 0u);
}

TEST(AnalyzerTest, MultipleThresholdsMonotone) {
  AdlOptions opts;
  opts.total_requests = 5000;
  const Trace t = synthesize_adl_trace(opts);
  const auto rows = analyze_thresholds(t, {0.5, 1.0, 2.0, 4.0});
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].long_requests, rows[i - 1].long_requests);
    EXPECT_LE(rows[i].total_repeats, rows[i - 1].total_repeats);
    EXPECT_LE(rows[i].time_saved_seconds, rows[i - 1].time_saved_seconds);
  }
}

// ---- WebStone ----

TEST(WebStoneTest, MixSumsToOne) {
  double total = 0.0;
  for (const auto& f : webstone_mix()) total += f.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WebStoneTest, DocrootFilesHaveRightSizes) {
  const std::string dir = "/tmp/swala_webstone_test";
  std::filesystem::remove_all(dir);
  auto paths = make_webstone_docroot(dir);
  ASSERT_TRUE(paths.is_ok()) << paths.status().to_string();
  EXPECT_EQ(paths.value().size(), 5u);
  for (const auto& f : webstone_mix()) {
    EXPECT_EQ(std::filesystem::file_size(dir + "/" + f.name), f.bytes);
  }
}

TEST(LoadDriverTest, CountsServerErrors) {
  // A raw server that alternates 200 and 500 responses.
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const net::InetAddress addr{"127.0.0.1", listener.value().local_port()};
  std::atomic<bool> running{true};
  std::thread server([&] {
    int count = 0;
    while (running.load()) {
      auto conn = listener.value().accept(100);
      if (!conn.is_ok()) continue;
      char buf[2048];
      (void)conn.value().set_recv_timeout(500);
      auto n = conn.value().read_some(buf, sizeof(buf));
      if (!n.is_ok() || n.value() == 0) continue;
      const int status = (count++ % 2 == 0) ? 200 : 500;
      std::string resp = "HTTP/1.0 " + std::to_string(status) +
                         " X\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
      (void)conn.value().write_all(resp);
    }
  });

  LoadOptions options;
  options.clients = 1;
  options.requests_per_client = 10;
  options.keep_alive = false;
  const auto result = run_load(addr, options,
                               [](Rng&, std::size_t) { return "/x"; });
  running = false;
  server.join();

  EXPECT_EQ(result.latency.count() + result.errors, 10u);
  EXPECT_EQ(result.errors, 5u) << "every second response was a 500";
  EXPECT_GT(result.throughput_rps(), 0.0);
}

TEST(WebStoneTest, SamplingTracksProbabilities) {
  Rng rng(7);
  std::map<std::string, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_webstone_target(rng)];
  EXPECT_NEAR(counts["/f500.html"], kDraws * 0.35, kDraws * 0.02);
  EXPECT_NEAR(counts["/f5k.html"], kDraws * 0.50, kDraws * 0.02);
  EXPECT_NEAR(counts["/f50k.html"], kDraws * 0.14, kDraws * 0.02);
  EXPECT_GT(counts["/f500k.html"], 0);
}

}  // namespace
}  // namespace swala::workload
