// Tests for the HTTP layer: URI handling, header map, request parser
// (including incremental and pipelined input), response serialization,
// dates, MIME, and the blocking client against a raw socket server.
#include <gtest/gtest.h>

#include <thread>

#include "http/client.h"
#include "http/date.h"
#include "http/headers.h"
#include "http/message.h"
#include "http/mime.h"
#include "http/parser.h"
#include "http/uri.h"
#include "net/socket.h"

namespace swala::http {
namespace {

// ---- URI ----

TEST(UriTest, ParsesPathAndQuery) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/cgi-bin/q?x=1&y=2", &uri));
  EXPECT_EQ(uri.path, "/cgi-bin/q");
  EXPECT_EQ(uri.raw_query, "x=1&y=2");
  EXPECT_EQ(uri.canonical(), "/cgi-bin/q?x=1&y=2");
}

TEST(UriTest, NoQuery) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/a/b.html", &uri));
  EXPECT_EQ(uri.path, "/a/b.html");
  EXPECT_EQ(uri.raw_query, "");
  EXPECT_EQ(uri.canonical(), "/a/b.html");
}

TEST(UriTest, PercentDecodingInPath) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/files/a%20b.txt", &uri));
  EXPECT_EQ(uri.path, "/files/a b.txt");
}

TEST(UriTest, RejectsNonRooted) {
  Uri uri;
  EXPECT_FALSE(parse_uri("relative/path", &uri));
  EXPECT_FALSE(parse_uri("", &uri));
  EXPECT_FALSE(parse_uri("http://host/x", &uri));
}

TEST(UriTest, RejectsBadEscapes) {
  Uri uri;
  EXPECT_FALSE(parse_uri("/a%zz", &uri));
  EXPECT_FALSE(parse_uri("/a%2", &uri));
}

TEST(UriTest, RejectsEmbeddedNul) {
  Uri uri;
  EXPECT_FALSE(parse_uri("/a%00b", &uri));
}

TEST(UriTest, DotSegmentsRemoved) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/a/b/../c/./d", &uri));
  EXPECT_EQ(uri.path, "/a/c/d");
}

TEST(UriTest, DotDotCannotEscapeRoot) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/../../etc/passwd", &uri));
  EXPECT_EQ(uri.path, "/etc/passwd");
  EXPECT_EQ(uri.path.find(".."), std::string::npos);
}

TEST(UriTest, QueryParamsDecoded) {
  Uri uri;
  ASSERT_TRUE(parse_uri("/q?a=1&b=hello+world&c=%26%3D&flag", &uri));
  const auto params = uri.query_params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(params[1].second, "hello world");
  EXPECT_EQ(params[2].second, "&=");
  EXPECT_EQ(params[3].first, "flag");
  EXPECT_EQ(params[3].second, "");
}

TEST(UriTest, PercentEncodeRoundtrip) {
  const std::string original = "/path with spaces/&special=chars?";
  std::string decoded;
  ASSERT_TRUE(percent_decode(percent_encode(original), &decoded));
  EXPECT_EQ(decoded, original);
}

// ---- headers ----

TEST(HeaderMapTest, CaseInsensitiveGet) {
  HeaderMap h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("Content-Length").has_value());
}

TEST(HeaderMapTest, SetReplacesAll) {
  HeaderMap h;
  h.add("X", "1");
  h.add("X", "2");
  EXPECT_EQ(h.get_all("x").size(), 2u);
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeaderMapTest, ContentLengthParsing) {
  HeaderMap h;
  h.set("Content-Length", "1234");
  EXPECT_EQ(h.content_length(), 1234u);
  h.set("Content-Length", "junk");
  EXPECT_FALSE(h.content_length().has_value());
}

// ---- request parser ----

Request parse_ok(std::string_view wire) {
  RequestParser parser;
  const ParseState state = parser.feed(wire);
  EXPECT_EQ(state, ParseState::kDone);
  return parser.request();
}

TEST(ParserTest, SimpleGet) {
  const Request req = parse_ok("GET /index.html HTTP/1.0\r\n\r\n");
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.uri.path, "/index.html");
  EXPECT_EQ(req.version, Version::kHttp10);
}

TEST(ParserTest, HeadersParsed) {
  const Request req = parse_ok(
      "GET /x HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n");
  EXPECT_EQ(req.headers.get("host"), "example.com");
  EXPECT_EQ(req.headers.get("accept"), "*/*");
  EXPECT_EQ(req.version, Version::kHttp11);
}

TEST(ParserTest, PostWithBody) {
  const Request req = parse_ok(
      "POST /submit HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello");
  EXPECT_EQ(req.method, Method::kPost);
  EXPECT_EQ(req.body, "hello");
}

TEST(ParserTest, ByteAtATime) {
  const std::string wire =
      "GET /slow?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
  RequestParser parser;
  ParseState state = ParseState::kNeedMore;
  for (char c : wire) {
    ASSERT_NE(state, ParseState::kError);
    state = parser.feed({&c, 1});
  }
  ASSERT_EQ(state, ParseState::kDone);
  EXPECT_EQ(parser.request().uri.raw_query, "x=1");
  EXPECT_EQ(parser.request().body, "abc");
}

TEST(ParserTest, PipelinedRequests) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            ParseState::kDone);
  EXPECT_EQ(parser.request().uri.path, "/a");
  parser.reset();
  ASSERT_EQ(parser.pump(), ParseState::kDone);
  EXPECT_EQ(parser.request().uri.path, "/b");
}

TEST(ParserTest, ToleratesBareLf) {
  const Request req = parse_ok("GET /x HTTP/1.0\nHost: h\n\n");
  EXPECT_EQ(req.uri.path, "/x");
  EXPECT_EQ(req.headers.get("Host"), "h");
}

TEST(ParserTest, LeadingBlankLinesIgnored) {
  const Request req = parse_ok("\r\n\r\nGET /x HTTP/1.0\r\n\r\n");
  EXPECT_EQ(req.uri.path, "/x");
}

TEST(ParserTest, UnknownMethodIs501) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("BREW /pot HTTP/1.1\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(ParserTest, BadVersionIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /x HTTP/2.0\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, MissingPartsIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, OversizedRequestLineIs414) {
  RequestParser parser(ParserLimits{.max_request_line = 64});
  const std::string wire = "GET /" + std::string(200, 'a') + " HTTP/1.0\r\n\r\n";
  ASSERT_EQ(parser.feed(wire), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(ParserTest, OversizedHeadersIs431) {
  RequestParser parser(ParserLimits{.max_header_bytes = 128});
  std::string wire = "GET /x HTTP/1.0\r\n";
  for (int i = 0; i < 20; ++i) {
    wire += "X-Filler-" + std::to_string(i) + ": aaaaaaaaaaaaaaaa\r\n";
  }
  wire += "\r\n";
  ASSERT_EQ(parser.feed(wire), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(ParserTest, OversizedBodyIs413) {
  RequestParser parser(ParserLimits{.max_body_bytes = 10});
  ASSERT_EQ(parser.feed("POST /x HTTP/1.0\r\nContent-Length: 100\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(ParserTest, BadContentLengthIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /x HTTP/1.0\r\nContent-Length: abc\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, HeaderNameWithSpaceRejected) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /x HTTP/1.0\r\nBad Header: v\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

// ---- chunked transfer-encoding and smuggling defences ----

TEST(ParserTest, ChunkedBodyDecoded) {
  const Request req = parse_ok(
      "POST /upload HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "5\r\nhello\r\n"
      "7\r\n world!\r\n"
      "0\r\n"
      "\r\n");
  EXPECT_EQ(req.body, "hello world!");
}

TEST(ParserTest, ChunkedWithExtensionsAndTrailers) {
  const Request req = parse_ok(
      "POST /u HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4;name=value\r\ndata\r\n"
      "0\r\n"
      "X-Trailer: ignored\r\n"
      "\r\n");
  EXPECT_EQ(req.body, "data");
}

TEST(ParserTest, ChunkedByteAtATime) {
  const std::string wire =
      "POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\nA\r\n0123456789\r\n0\r\n\r\n";
  RequestParser parser;
  ParseState state = ParseState::kNeedMore;
  for (char c : wire) {
    ASSERT_NE(state, ParseState::kError);
    state = parser.feed({&c, 1});
  }
  ASSERT_EQ(state, ParseState::kDone);
  EXPECT_EQ(parser.request().body, "abc0123456789");
}

TEST(ParserTest, ChunkedPlusContentLengthIsSmuggling400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /u HTTP/1.1\r\nContent-Length: 4\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, ConflictingContentLengthsRejected) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /u HTTP/1.0\r\nContent-Length: 4\r\n"
                        "Content-Length: 8\r\n\r\nbody"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, AgreeingDuplicateContentLengthsAccepted) {
  const Request req = parse_ok(
      "POST /u HTTP/1.0\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody");
  EXPECT_EQ(req.body, "body");
}

TEST(ParserTest, UnknownTransferEncodingIs501) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /u HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(ParserTest, BadChunkSizeIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                        "\r\nZZ\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(ParserTest, ChunkedBodyHitsSizeLimit) {
  RequestParser parser(ParserLimits{.max_body_bytes = 8});
  ASSERT_EQ(parser.feed("POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                        "\r\n20\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(ParserTest, PipeliningAfterChunkedRequest) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                        "\r\n2\r\nhi\r\n0\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            ParseState::kDone);
  EXPECT_EQ(parser.request().body, "hi");
  parser.reset();
  ASSERT_EQ(parser.pump(), ParseState::kDone);
  EXPECT_EQ(parser.request().uri.path, "/b");
}

TEST(ParserTest, KeepAliveSemantics) {
  EXPECT_TRUE(parse_ok("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse_ok("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_TRUE(parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                  .keep_alive());
}

// Parameterized sweep: the parser must produce identical results no matter
// how the input is chunked.
class ChunkedFeedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkedFeedTest, ChunkingInvariant) {
  const std::string wire =
      "POST /cgi-bin/q?a=%20b HTTP/1.1\r\n"
      "Host: swala.test\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "hello world";
  const std::size_t chunk = GetParam();
  RequestParser parser;
  ParseState state = ParseState::kNeedMore;
  for (std::size_t i = 0; i < wire.size() && state == ParseState::kNeedMore;
       i += chunk) {
    state = parser.feed(std::string_view(wire).substr(i, chunk));
  }
  ASSERT_EQ(state, ParseState::kDone);
  EXPECT_EQ(parser.request().uri.path, "/cgi-bin/q");
  EXPECT_EQ(parser.request().body, "hello world");
  EXPECT_EQ(parser.request().headers.get("Host"), "swala.test");
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkedFeedTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 64, 1024));

// ---- response serialization / parsing ----

TEST(ResponseTest, SerializeBasics) {
  Response resp = Response::make(200, "body", "text/plain");
  const std::string wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\nbody"));
}

TEST(ResponseTest, ErrorPageMentionsStatus) {
  Response resp = Response::error(404, "missing");
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("404"), std::string::npos);
  EXPECT_NE(resp.body.find("missing"), std::string::npos);
}

TEST(ResponseTest, ParseRoundtrip) {
  Response out = Response::make(201, "payload", "application/json");
  out.version = Version::kHttp11;
  Response in;
  ASSERT_TRUE(parse_response(out.serialize(), &in));
  EXPECT_EQ(in.status, 201);
  EXPECT_EQ(in.version, Version::kHttp11);
  EXPECT_EQ(in.body, "payload");
  EXPECT_EQ(in.headers.get("Content-Type"), "application/json");
}

TEST(ResponseTest, ParseWithoutContentLengthTakesRest) {
  Response in;
  ASSERT_TRUE(parse_response("HTTP/1.0 200 OK\r\n\r\neverything else", &in));
  EXPECT_EQ(in.body, "everything else");
}

TEST(ResponseTest, ParseRejectsGarbage) {
  Response in;
  EXPECT_FALSE(parse_response("not http at all", &in));
  EXPECT_FALSE(parse_response("HTTP/1.0\r\n\r\n", &in));
}

TEST(ReasonPhraseTest, KnownCodes) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(500), "Internal Server Error");
  EXPECT_EQ(reason_phrase(999), "Unknown");
}

// ---- dates ----

TEST(DateTest, FormatKnownTimestamp) {
  // 784111777 = Sun, 06 Nov 1994 08:49:37 GMT (the RFC example).
  EXPECT_EQ(format_http_date(784111777), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(DateTest, ParseRoundtrip) {
  const std::time_t t = 1700000000;
  const auto parsed = parse_http_date(format_http_date(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_http_date("yesterday").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 06 Qqq 1994 08:49:37 GMT").has_value());
}

// ---- MIME ----

TEST(MimeTest, CommonTypes) {
  EXPECT_EQ(mime_type_for_path("/a/index.html"), "text/html");
  EXPECT_EQ(mime_type_for_path("/tile.GIF"), "image/gif");
  EXPECT_EQ(mime_type_for_path("/x.tar"), "application/x-tar");
  EXPECT_EQ(mime_type_for_path("/noext"), "application/octet-stream");
}

// ---- client against a raw server ----

TEST(ClientTest, TalksToRawServer) {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const net::InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread server([&] {
    auto conn = listener.value().accept(2000);
    ASSERT_TRUE(conn.is_ok());
    char buf[4096];
    auto n = conn.value().read_some(buf, sizeof(buf));
    ASSERT_TRUE(n.is_ok());
    const std::string request(buf, n.value());
    EXPECT_NE(request.find("GET /hello HTTP/1.1"), std::string::npos);
    Response resp = Response::make(200, "hi there");
    resp.headers.set("Connection", "close");
    ASSERT_TRUE(conn.value().write_all(resp.serialize()).is_ok());
  });

  HttpClient client(addr, 2000);
  auto resp = client.get("/hello");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "hi there");
  server.join();
}

TEST(ClientTest, ConnectFailureSurfaces) {
  std::uint16_t dead_port;
  {
    auto listener = net::TcpListener::listen({"127.0.0.1", 0});
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_port();
  }
  HttpClient client({"127.0.0.1", dead_port}, 300);
  auto resp = client.get("/x");
  EXPECT_FALSE(resp.is_ok());
}

// A server that hangs up mid-body (declared Content-Length, short payload)
// must surface a truncation error, not a silent short success — otherwise a
// crashed backend looks like a complete document and could be cached.
TEST(ClientTest, TruncatedBodyIsErrorNotShortSuccess) {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const net::InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread server([&] {
    auto conn = listener.value().accept(2000);
    ASSERT_TRUE(conn.is_ok());
    char buf[4096];
    ASSERT_TRUE(conn.value().read_some(buf, sizeof(buf)).is_ok());
    // Promise 100 bytes, deliver 10, then hang up.
    ASSERT_TRUE(conn.value()
                    .write_all("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n"
                               "Connection: close\r\n\r\n0123456789")
                    .is_ok());
  });

  HttpClient client(addr, 2000);
  auto resp = client.get("/partial");
  ASSERT_FALSE(resp.is_ok()) << "short body accepted as success";
  EXPECT_EQ(resp.status().code(), StatusCode::kClosed)
      << resp.status().to_string();
  server.join();
}

// Without Content-Length the body is legitimately EOF-delimited (HTTP/1.0
// style); connection close then means "complete", not truncation.
TEST(ClientTest, EofDelimitedBodyWithoutContentLengthIsComplete) {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const net::InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread server([&] {
    auto conn = listener.value().accept(2000);
    ASSERT_TRUE(conn.is_ok());
    char buf[4096];
    ASSERT_TRUE(conn.value().read_some(buf, sizeof(buf)).is_ok());
    ASSERT_TRUE(conn.value()
                    .write_all("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n"
                               "streamed until close")
                    .is_ok());
  });

  HttpClient client(addr, 2000);
  auto resp = client.get("/streamed");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().body, "streamed until close");
  server.join();
}

}  // namespace
}  // namespace swala::http
