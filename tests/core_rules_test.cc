// Tests for the cacheability rule engine: parsing, matching, precedence.
#include <gtest/gtest.h>

#include "common/config.h"
#include "core/rules.h"

namespace swala::core {
namespace {

TEST(RulesTest, FirstMatchWins) {
  auto rules = CacheabilityRules::from_lines({
      "/cgi-bin/private/* nocache",
      "/cgi-bin/* cache ttl=60 min_exec=0.5",
  });
  ASSERT_TRUE(rules.is_ok()) << rules.status().to_string();
  const auto& r = rules.value();

  EXPECT_FALSE(r.classify("/cgi-bin/private/secret").cacheable);
  const auto pub = r.classify("/cgi-bin/query");
  EXPECT_TRUE(pub.cacheable);
  EXPECT_DOUBLE_EQ(pub.ttl_seconds, 60.0);
  EXPECT_DOUBLE_EQ(pub.min_exec_seconds, 0.5);
}

TEST(RulesTest, DefaultApplies) {
  auto rules = CacheabilityRules::from_lines({"/cgi-bin/* cache"},
                                             /*default_cacheable=*/false);
  ASSERT_TRUE(rules.is_ok());
  EXPECT_FALSE(rules.value().classify("/somewhere/else").cacheable);
  EXPECT_TRUE(rules.value().classify("/cgi-bin/x").cacheable);
}

TEST(RulesTest, EmptyRuleSetUsesDefault) {
  CacheabilityRules rules;
  EXPECT_FALSE(rules.classify("/anything").cacheable);
  RuleDecision open;
  open.cacheable = true;
  rules.set_default(open);
  EXPECT_TRUE(rules.classify("/anything").cacheable);
}

TEST(RulesTest, OptionsOptional) {
  auto rules = CacheabilityRules::from_lines({"/x cache"});
  ASSERT_TRUE(rules.is_ok());
  const auto d = rules.value().classify("/x");
  EXPECT_TRUE(d.cacheable);
  EXPECT_DOUBLE_EQ(d.ttl_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.min_exec_seconds, 0.0);
}

TEST(RulesTest, ParseErrors) {
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x"}).is_ok());
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x maybe"}).is_ok());
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x cache ttl"}).is_ok());
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x cache ttl=abc"}).is_ok());
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x cache ttl=-5"}).is_ok());
  EXPECT_FALSE(CacheabilityRules::from_lines({"/x cache bogus=1"}).is_ok());
}

TEST(RulesTest, FromConfigSection) {
  auto cfg = Config::parse(
      "[cacheability]\n"
      "rule = /cgi-bin/adl/* cache ttl=3600 min_exec=0.1\n"
      "rule = /cgi-bin/* cache\n"
      "default = nocache\n");
  ASSERT_TRUE(cfg.is_ok());
  auto rules = CacheabilityRules::from_config(cfg.value());
  ASSERT_TRUE(rules.is_ok()) << rules.status().to_string();
  EXPECT_EQ(rules.value().rule_count(), 2u);
  EXPECT_DOUBLE_EQ(rules.value().classify("/cgi-bin/adl/q").ttl_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(rules.value().classify("/cgi-bin/other").ttl_seconds, 0.0);
  EXPECT_FALSE(rules.value().classify("/static/x").cacheable);
}

TEST(RulesTest, FromConfigDefaultCache) {
  auto cfg = Config::parse("[cacheability]\ndefault = cache\n");
  ASSERT_TRUE(cfg.is_ok());
  auto rules = CacheabilityRules::from_config(cfg.value());
  ASSERT_TRUE(rules.is_ok());
  EXPECT_TRUE(rules.value().classify("/whatever").cacheable);
}

TEST(RulesTest, FromConfigBadDefault) {
  auto cfg = Config::parse("[cacheability]\ndefault = sometimes\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_FALSE(CacheabilityRules::from_config(cfg.value()).is_ok());
}

TEST(RulesTest, QuestionMarkGlob) {
  auto rules = CacheabilityRules::from_lines({"/v? cache"});
  ASSERT_TRUE(rules.is_ok());
  EXPECT_TRUE(rules.value().classify("/v1").cacheable);
  EXPECT_FALSE(rules.value().classify("/v10").cacheable);
}

}  // namespace
}  // namespace swala::core
