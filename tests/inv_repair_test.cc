// Tests for the anti-entropy consistency-repair layer's building blocks:
// the epoch-stamped InvalidationLog, the kHello/kInvalidate epoch tails and
// the kDigest/kInvSync/kInvSyncResp wire messages (including legacy byte
// compatibility), and the CacheManager repair API (replay idempotency,
// gap pull/apply, truncation fallback, directory digests).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/message.h"
#include "common/clock.h"
#include "core/inv_log.h"
#include "core/manager.h"

namespace swala::core {
namespace {

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

ManagerOptions open_options() {
  ManagerOptions mo;
  mo.limits = {1000, 0};
  RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

void cache_target(CacheManager& manager, const std::string& target) {
  const auto uri = uri_of(target);
  auto lookup = manager.lookup(http::Method::kGet, uri);
  ASSERT_EQ(lookup.outcome, LookupOutcome::kMissMustExecute) << target;
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("data"),
                   1.0);
}

std::uint64_t vec_get(const EpochVector& v, NodeId origin) {
  for (const auto& [node, epoch] : v) {
    if (node == origin) return epoch;
  }
  return 0;
}

// ---- InvalidationLog ----

TEST(InvalidationLogTest, OriginateStampsMonotonically) {
  InvalidationLog log;
  EXPECT_EQ(log.originate(3, "GET /a*").epoch, 1u);
  EXPECT_EQ(log.originate(3, "GET /b*").epoch, 2u);
  EXPECT_EQ(log.originate(3, "GET /c*").epoch, 3u);
  EXPECT_EQ(vec_get(log.high_vector(), 3), 3u);
  EXPECT_EQ(vec_get(log.floor_vector(), 3), 3u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(InvalidationLogTest, AdmitFiltersExactDuplicates) {
  InvalidationLog log;
  EXPECT_TRUE(log.admit({2, 1, "GET /x*"}));
  EXPECT_FALSE(log.admit({2, 1, "GET /x*"}));  // replayed frame
  EXPECT_TRUE(log.admit({4, 1, "GET /x*"}));   // same epoch, other origin
  EXPECT_EQ(log.size(), 2u);
}

TEST(InvalidationLogTest, OutOfOrderAdmitClosesTheHole) {
  InvalidationLog log;
  EXPECT_TRUE(log.admit({2, 2, "GET /b*"}));  // hole: epoch 1 missing
  EXPECT_EQ(vec_get(log.floor_vector(), 2), 0u);
  EXPECT_EQ(vec_get(log.high_vector(), 2), 2u);
  EXPECT_TRUE(log.admit({2, 1, "GET /a*"}));  // hole closed
  EXPECT_EQ(vec_get(log.floor_vector(), 2), 2u);
  EXPECT_FALSE(log.admit({2, 1, "GET /a*"}));  // below floor = duplicate
}

TEST(InvalidationLogTest, EpochZeroIsLegacyAlwaysNewNeverLogged) {
  InvalidationLog log;
  EXPECT_TRUE(log.admit({2, 0, "GET /legacy*"}));
  EXPECT_TRUE(log.admit({2, 0, "GET /legacy*"}));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.high_vector().empty());
}

TEST(InvalidationLogTest, BehindDetectsGapsAgainstPeerHigh) {
  InvalidationLog log;
  log.admit({1, 1, "GET /a*"});
  EXPECT_FALSE(log.behind({{1, 1}}));           // caught up
  EXPECT_TRUE(log.behind({{1, 3}}));            // peer ahead on origin 1
  EXPECT_TRUE(log.behind({{7, 1}}));            // unknown origin
  EXPECT_FALSE(log.behind({}));                 // empty vector: no evidence
  log.admit({1, 3, "GET /c*"});                 // hole at epoch 2
  EXPECT_TRUE(log.behind({{1, 3}}));            // floor 1 < peer high 3
}

TEST(InvalidationLogTest, EntriesAfterAndTruncation) {
  InvalidationLog log(/*max_entries=*/2);
  log.originate(0, "GET /a*");  // epoch 1, evicted by the bound below
  log.originate(0, "GET /b*");  // epoch 2
  log.originate(0, "GET /c*");  // epoch 3 → epoch 1 falls out of the log
  EXPECT_EQ(log.size(), 2u);

  bool truncated = false;
  auto all = log.entries_after({}, &truncated);
  EXPECT_TRUE(truncated) << "requester at floor 0 needs the evicted epoch 1";
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].epoch, 2u);
  EXPECT_EQ(all[1].epoch, 3u);

  truncated = false;
  auto tail = log.entries_after({{0, 2}}, &truncated);
  EXPECT_FALSE(truncated) << "floor 2 only needs epoch 3, still logged";
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].epoch, 3u);
  EXPECT_EQ(tail[0].pattern, "GET /c*");

  truncated = false;
  EXPECT_TRUE(log.entries_after({{0, 3}}, &truncated).empty());
  EXPECT_FALSE(truncated);
}

}  // namespace
}  // namespace swala::core

namespace swala::cluster {
namespace {

Message roundtrip(const Message& msg) {
  const std::string frame = encode_message(msg);
  auto decoded = decode_message(std::string_view(frame).substr(4));
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  return decoded.value();
}

// ---- wire protocol: epoch tails + new repair messages ----

TEST(InvRepairMessageTest, InvalidateEpochRoundtrip) {
  const Message out = roundtrip(Message::invalidate(4, "GET /cgi-bin/r*", 7));
  EXPECT_EQ(out.type, MsgType::kInvalidate);
  EXPECT_EQ(out.sender, 4u);
  EXPECT_EQ(out.key, "GET /cgi-bin/r*");
  EXPECT_EQ(out.epoch, 7u);
}

TEST(InvRepairMessageTest, LegacyInvalidateStaysByteIdentical) {
  // Epoch 0 must not change the frame: type + sender + (len, pattern).
  const std::string pattern = "GET /cgi-bin/r*";
  const std::string frame = encode_message(Message::invalidate(4, pattern, 0));
  EXPECT_EQ(frame.size(), 4u + 1u + 4u + 4u + pattern.size());
  const Message out = roundtrip(Message::invalidate(4, pattern, 0));
  EXPECT_EQ(out.epoch, 0u);
  EXPECT_EQ(out.key, pattern);
}

TEST(InvRepairMessageTest, HelloEpochsRoundtripAndLegacySize) {
  const std::string plain = encode_message(Message::hello(3));
  EXPECT_EQ(plain.size(), 4u + 1u + 4u) << "plain HELLO must stay minimal";

  const core::EpochVector epochs = {{0, 5}, {2, 19}};
  const Message out = roundtrip(Message::hello_with_epochs(3, epochs));
  EXPECT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(out.sender, 3u);
  EXPECT_EQ(out.epochs, epochs);

  const Message legacy = roundtrip(Message::hello(3));
  EXPECT_TRUE(legacy.epochs.empty());
}

TEST(InvRepairMessageTest, DigestRoundtrip) {
  const core::EpochVector epochs = {{1, 2}};
  const Message with = roundtrip(Message::make_digest(1, epochs, true,
                                                      0xDEADBEEFCAFEF00DULL));
  EXPECT_EQ(with.type, MsgType::kDigest);
  EXPECT_EQ(with.epochs, epochs);
  EXPECT_TRUE(with.has_digest);
  EXPECT_EQ(with.digest, 0xDEADBEEFCAFEF00DULL);

  const Message without = roundtrip(Message::make_digest(1, epochs, false, 0));
  EXPECT_FALSE(without.has_digest);
}

TEST(InvRepairMessageTest, InvSyncRoundtrip) {
  const core::EpochVector floors = {{0, 1}, {1, 0}, {2, 44}};
  const Message out = roundtrip(Message::inv_sync(2, floors));
  EXPECT_EQ(out.type, MsgType::kInvSync);
  EXPECT_EQ(out.epochs, floors);
}

TEST(InvRepairMessageTest, InvSyncRespRoundtrip) {
  std::vector<core::InvalidationRecord> entries = {
      {0, 1, "GET /cgi-bin/a*"}, {2, 9, "GET /cgi-bin/b?x=*"}};
  const Message out = roundtrip(Message::inv_sync_resp(0, entries, true));
  EXPECT_EQ(out.type, MsgType::kInvSyncResp);
  EXPECT_TRUE(out.truncated);
  ASSERT_EQ(out.inv_entries.size(), 2u);
  EXPECT_EQ(out.inv_entries[0].origin, 0u);
  EXPECT_EQ(out.inv_entries[0].epoch, 1u);
  EXPECT_EQ(out.inv_entries[0].pattern, "GET /cgi-bin/a*");
  EXPECT_EQ(out.inv_entries[1].origin, 2u);
  EXPECT_EQ(out.inv_entries[1].epoch, 9u);

  const Message empty = roundtrip(Message::inv_sync_resp(0, {}, false));
  EXPECT_FALSE(empty.truncated);
  EXPECT_TRUE(empty.inv_entries.empty());
}

TEST(InvRepairMessageTest, TruncatedRepairFramesRejected) {
  for (const Message& msg :
       {Message::make_digest(1, {{0, 3}}, true, 42),
        Message::inv_sync(2, {{0, 1}}),
        Message::inv_sync_resp(0, {{1, 2, "GET /x*"}}, false)}) {
    const std::string payload = std::string(encode_message(msg)).substr(4);
    for (std::size_t cut = 1; cut < payload.size(); ++cut) {
      EXPECT_FALSE(decode_message(payload.substr(0, cut)).is_ok())
          << "cut at " << cut << " accepted";
    }
  }
}

}  // namespace
}  // namespace swala::cluster

namespace swala::core {
namespace {

/// Bus that records epoch-stamped broadcasts and erases, and optionally
/// forwards inserts/erases to a peer manager (drops them when `drop_link`).
class RecordingBus : public CooperationBus {
 public:
  void broadcast_insert(const EntryMeta& meta) override {
    if (peer != nullptr && !drop_link) peer->on_peer_insert(meta);
  }
  void broadcast_erase(NodeId owner, const std::string& key,
                       std::uint64_t version) override {
    erases.push_back(key);
    if (peer != nullptr && !drop_link) peer->on_peer_erase(owner, key, version);
  }
  void broadcast_invalidate(const std::string& pattern,
                            std::uint64_t epoch) override {
    invalidations.push_back({pattern, epoch});
  }
  Result<CachedResult> fetch_remote(NodeId, const std::string&) override {
    return Status(StatusCode::kUnavailable, "test bus");
  }

  CacheManager* peer = nullptr;
  bool drop_link = false;
  std::vector<std::string> erases;
  std::vector<std::pair<std::string, std::uint64_t>> invalidations;
};

// ---- CacheManager repair API ----

TEST(ManagerEpochTest, LocalInvalidateStampsMonotonicEpochs) {
  ManualClock clock(0);
  RecordingBus bus;
  CacheManager manager(0, 3, open_options(), &clock, &bus);
  cache_target(manager, "/cgi-bin/a");
  cache_target(manager, "/cgi-bin/b");

  EXPECT_EQ(manager.invalidate("GET /cgi-bin/a*"), 1u);
  EXPECT_EQ(manager.invalidate("GET /cgi-bin/b*"), 1u);
  ASSERT_EQ(bus.invalidations.size(), 2u);
  EXPECT_EQ(bus.invalidations[0].second, 1u);
  EXPECT_EQ(bus.invalidations[1].second, 2u);
  EXPECT_EQ(vec_get(manager.inv_high_vector(), 0), 2u);
}

TEST(ManagerEpochTest, ReplayedPeerInvalidateIsIdempotent) {
  ManualClock clock(0);
  CacheManager manager(1, 3, open_options(), &clock);
  cache_target(manager, "/cgi-bin/r?q=1");

  EXPECT_EQ(manager.on_peer_invalidate("GET /cgi-bin/r*", 0, 1), 1u);
  // The entry comes back (a fresh execution) ...
  cache_target(manager, "/cgi-bin/r?q=1");
  // ... and a replay of the SAME (origin, epoch) frame must not kill it.
  EXPECT_EQ(manager.on_peer_invalidate("GET /cgi-bin/r*", 0, 1), 0u);
  EXPECT_TRUE(manager.store().contains("GET /cgi-bin/r?q=1"));
  // A legacy (epoch 0) frame has no replay identity: it always applies.
  EXPECT_EQ(manager.on_peer_invalidate("GET /cgi-bin/r*", 0, 0), 1u);
}

TEST(ManagerEpochTest, GapPullAppliesMissedInvalidationsOnce) {
  ManualClock clock(0);
  CacheManager origin(0, 3, open_options(), &clock);
  CacheManager lagger(1, 3, open_options(), &clock);

  cache_target(origin, "/cgi-bin/a");
  cache_target(lagger, "/cgi-bin/a");  // lagger's own copy of the key
  origin.invalidate("GET /cgi-bin/a*");  // broadcast lost: lagger never hears

  ASSERT_TRUE(lagger.inv_behind(origin.inv_high_vector()));
  bool truncated = false;
  const auto entries =
      origin.inv_entries_after(lagger.inv_floor_vector(), &truncated);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(truncated);

  EXPECT_EQ(lagger.apply_inv_sync(entries, truncated), 1u);
  EXPECT_FALSE(lagger.store().contains("GET /cgi-bin/a"));
  EXPECT_FALSE(lagger.inv_behind(origin.inv_high_vector()));
  const auto stats = lagger.stats();
  EXPECT_EQ(stats.inv_epoch_gaps_repaired, 1u);
  EXPECT_EQ(stats.stale_serves_prevented, 1u);

  // Idempotency: applying the same response again is a complete no-op.
  cache_target(lagger, "/cgi-bin/a");
  EXPECT_EQ(lagger.apply_inv_sync(entries, false), 0u);
  EXPECT_TRUE(lagger.store().contains("GET /cgi-bin/a"));
  EXPECT_EQ(lagger.stats().inv_epoch_gaps_repaired, 1u);
}

TEST(ManagerEpochTest, TruncatedSyncFallsBackToFullPurge) {
  ManualClock clock(0);
  CacheManager manager(1, 3, open_options(), &clock);
  cache_target(manager, "/cgi-bin/a");
  cache_target(manager, "/cgi-bin/b");

  EXPECT_EQ(manager.apply_inv_sync({}, /*truncated=*/true), 0u);
  EXPECT_EQ(manager.store().entry_count(), 0u)
      << "overflow must purge conservatively, not stay stale";
  EXPECT_EQ(manager.stats().inv_overflow_purges, 1u);
  EXPECT_TRUE(manager.debug_check_consistency().consistent());
}

TEST(ManagerEpochTest, RepairedInvalidationAnnouncesErases) {
  // The satellite-2 fix: when a rejoiner's pull drops its own stale entry,
  // the erase must be re-broadcast so survivors' re-polluted tables (from
  // the additions-only resync push) drop the record in the same round.
  ManualClock clock(0);
  RecordingBus bus;
  CacheManager manager(1, 3, open_options(), &clock, &bus);
  cache_target(manager, "/cgi-bin/stale?x=1");

  const std::size_t applied =
      manager.apply_inv_sync({{0, 1, "GET /cgi-bin/stale*"}}, false);
  EXPECT_EQ(applied, 1u);
  ASSERT_EQ(bus.erases.size(), 1u);
  EXPECT_EQ(bus.erases[0], "GET /cgi-bin/stale?x=1");
}

// ---- directory digests ----

TEST(ManagerDigestTest, DigestsAgreeAfterCleanPropagation) {
  ManualClock clock(0);
  RecordingBus bus_a;
  CacheManager a(0, 2, open_options(), &clock, &bus_a);
  CacheManager b(1, 2, open_options(), &clock);
  bus_a.peer = &b;

  cache_target(a, "/cgi-bin/a?x=1");
  cache_target(a, "/cgi-bin/a?x=2");

  std::size_t n_sender = 0, n_receiver = 0;
  EXPECT_EQ(a.digest_for_peer(1, &n_sender),
            b.digest_of_peer_table(0, &n_receiver));
  EXPECT_EQ(n_sender, 2u);
  EXPECT_EQ(n_receiver, 2u);
  EXPECT_NE(a.digest_for_peer(1, nullptr), 0u);
}

TEST(ManagerDigestTest, DigestExposesLostInsertAndErase) {
  ManualClock clock(0);
  RecordingBus bus_a;
  CacheManager a(0, 2, open_options(), &clock, &bus_a);
  CacheManager b(1, 2, open_options(), &clock);
  bus_a.peer = &b;

  cache_target(a, "/cgi-bin/a?x=1");
  bus_a.drop_link = true;  // the next update frame is lost
  cache_target(a, "/cgi-bin/a?x=2");
  EXPECT_NE(a.digest_for_peer(1, nullptr), b.digest_of_peer_table(0, nullptr))
      << "lost kInsert must show up as a digest mismatch";

  bus_a.drop_link = false;
  cache_target(b, "/cgi-bin/b-doesnt-matter");  // unrelated self entry
  // Repair the drift the way the group does: drop + re-announce.
  b.on_peer_recovered(0);
  for (const auto& meta : a.store().resident_metas()) b.on_peer_insert(meta);
  EXPECT_EQ(a.digest_for_peer(1, nullptr), b.digest_of_peer_table(0, nullptr));
}

}  // namespace
}  // namespace swala::core
