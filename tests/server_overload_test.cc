// End-to-end overload protection on SwalaServer: slow-loris and stalled
// clients cut at the request deadline, the CGI concurrency gate, admission
// control with hysteresis, graceful drain, error-response connection
// hygiene, ProcessCgi under a deadline, and server-level single-flight.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "cgi/process.h"
#include "cgi/scripted.h"
#include "http/client.h"
#include "server/swala_server.h"

namespace swala::server {
namespace {

std::shared_ptr<cgi::HandlerRegistry> registry_with(
    std::shared_ptr<cgi::CgiHandler> handler) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  registry->mount("/cgi-bin/", std::move(handler));
  return registry;
}

std::string make_docroot(const std::string& name) {
  const std::string dir = "/tmp/swala_overload_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/index.html") << "<html>home</html>";
  return dir;
}

core::ManagerOptions cache_options() {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

/// Reads until EOF or `timeout_ms` of silence; returns what arrived.
std::string read_to_eof(net::TcpStream& stream, int timeout_ms) {
  (void)stream.set_recv_timeout(timeout_ms);
  std::string out;
  char buf[4096];
  for (;;) {
    auto n = stream.read_some(buf, sizeof(buf));
    if (!n || n.value() == 0) break;
    out.append(buf, n.value());
  }
  return out;
}

/// Every scenario runs under both connection-path models: the paper's
/// thread-per-connection pool and the epoll reactor. Overload semantics
/// (shed, 408, drain, deadline cut, coalescing) must be identical.
class OverloadTest : public ::testing::TestWithParam<IoModel> {
 protected:
  SwalaServerOptions base_options() const {
    SwalaServerOptions opts;
    opts.io_model = GetParam();
    return opts;
  }
};

INSTANTIATE_TEST_SUITE_P(
    IoModels, OverloadTest,
    ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
    [](const ::testing::TestParamInfo<IoModel>& info) {
      return info.param == IoModel::kEpoll ? std::string("epoll")
                                           : std::string("threads");
    });

TEST_P(OverloadTest, SlowLorisRequestIsCutAt408) {
  SwalaServerOptions opts = base_options();
  opts.request_threads = 2;
  opts.request_timeout_ms = 300;
  opts.recv_timeout_ms = 5000;  // idle timeout is generous; the budget cuts
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  net::TcpStream& stream = conn.value();
  ASSERT_TRUE(stream.write_all("GET / HTTP/1.1\r\nHost: ").is_ok());
  // Dribble one header byte per 60 ms: every byte resets the *idle* timer,
  // but the per-request deadline armed at the first byte keeps running.
  // Stop as soon as the server responds (writing further would race its
  // close and can turn the pending 408 into a connection reset).
  for (int i = 0; i < 30 && !net::wait_readable(stream.raw_fd(), 0); ++i) {
    (void)stream.write_all("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const std::string response = read_to_eof(stream, 2000);
  EXPECT_NE(response.find(" 408 "), std::string::npos) << response;
  EXPECT_GE(server.stats().deadline_exceeded, 1u);
  server.stop();
}

TEST_P(OverloadTest, StalledResponseWriteIsCutAtDeadline) {
  cgi::ScriptedOptions sopts;
  sopts.output_bytes = 16 * 1024 * 1024;  // larger than both socket buffers
  auto scripted = std::make_shared<cgi::ScriptedCgi>(sopts);
  SwalaServerOptions opts = base_options();
  opts.request_threads = 2;
  opts.request_timeout_ms = 400;
  opts.recv_timeout_ms = 10000;  // without the budget the stall holds 10 s
  SwalaServer server(opts, registry_with(scripted));
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  net::TcpStream& stream = conn.value();
  // Shrink the receive buffer (also freezes its autotuning) so the server's
  // 16 MB response cannot fit in kernel buffers and the write stalls.
  const int tiny = 4096;
  (void)::setsockopt(stream.raw_fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                     sizeof(tiny));
  ASSERT_TRUE(
      stream.write_all("GET /cgi-bin/big HTTP/1.1\r\nHost: t\r\n\r\n").is_ok());
  // ... then never read. The request thread must be freed at the deadline.
  ServerStats stats;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stats = server.stats();
  } while (stats.deadline_exceeded == 0 &&
           std::chrono::steady_clock::now() < give_up);
  EXPECT_GE(stats.deadline_exceeded, 1u);

  // The freed thread serves a well-behaved client promptly (admin is off,
  // so a 404 is expected — any completed response proves liveness).
  http::HttpClient probe(server.address(), 5000);
  ASSERT_TRUE(probe.get("/").is_ok());
  server.stop();
}

TEST_P(OverloadTest, CgiGateTimeoutShedsWith503) {
  cgi::ScriptedOptions sopts;
  sopts.mode = cgi::ComputeMode::kSleep;
  sopts.service_seconds = 1.2;
  auto scripted = std::make_shared<cgi::ScriptedCgi>(sopts);
  SwalaServerOptions opts = base_options();
  opts.request_threads = 4;
  opts.request_timeout_ms = 400;
  opts.max_concurrent_cgi = 1;
  opts.enable_admin = true;
  SwalaServer server(opts, registry_with(scripted));
  ASSERT_TRUE(server.start().is_ok());

  std::thread first([&] {
    http::HttpClient c(server.address(), 10000);
    const auto r = c.get("/cgi-bin/slow?a=1");
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().status, 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  // The gate slot is held for 1.2 s; this request's 400 ms budget expires
  // while queued, so it is shed instead of piling onto the overloaded box.
  http::HttpClient second(server.address(), 10000);
  const auto r2 = second.get("/cgi-bin/slow?b=2");
  first.join();
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r2.value().status, 503);
  EXPECT_TRUE(r2.value().headers.get("Retry-After").has_value());
  EXPECT_EQ(r2.value().headers.get("Connection"), "close");
  EXPECT_GE(server.stats().requests_shed, 1u);

  http::HttpClient admin(server.address(), 2000);
  const auto status = admin.get("/swala-status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_NE(status.value().body.find("\"cgi_gate_capacity\": 1"),
            std::string::npos);
  EXPECT_NE(status.value().body.find("\"cgi_queue_timeouts\": 1"),
            std::string::npos);
  server.stop();
}

TEST_P(OverloadTest, AdmissionControlShedsAndRecovers) {
  SwalaServerOptions opts = base_options();
  opts.request_threads = 2;
  opts.max_connections = 2;
  opts.shed_resume_percent = 50;
  opts.retry_after_seconds = 7;
  opts.docroot = make_docroot("admission");
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  // Two keep-alive clients pin both request threads and hold the active
  // gauge at the cap; nobody is left in accept().
  http::HttpClient a(server.address(), 5000);
  http::HttpClient b(server.address(), 5000);
  auto ra = a.get("/index.html");
  ASSERT_TRUE(ra.is_ok());
  EXPECT_EQ(ra.value().status, 200);
  auto rb = b.get("/index.html");
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(rb.value().status, 200);

  // The dedicated shedder must refuse the third arrival with a fast 503 —
  // no request bytes needed, the connection itself is over the limit.
  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  const std::string shed = read_to_eof(conn.value(), 3000);
  EXPECT_NE(shed.find(" 503 "), std::string::npos) << shed;
  EXPECT_NE(shed.find("Retry-After: 7"), std::string::npos) << shed;
  EXPECT_NE(shed.find("Connection: close"), std::string::npos) << shed;
  EXPECT_GE(server.stats().requests_shed, 1u);

  // Hysteresis: dropping below resume (50% of 2 = 1) reopens the gate.
  a.disconnect();
  b.disconnect();
  int status = 0;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < give_up) {
    http::HttpClient probe(server.address(), 2000);
    const auto r = probe.get("/index.html");
    if (r.is_ok()) status = r.value().status;
    if (status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(status, 200);
  server.stop();
}

TEST_P(OverloadTest, DrainCompletesInFlightAndRefusesNew) {
  cgi::ScriptedOptions sopts;
  sopts.mode = cgi::ComputeMode::kSleep;
  sopts.service_seconds = 0.4;
  auto scripted = std::make_shared<cgi::ScriptedCgi>(sopts);
  SwalaServerOptions opts = base_options();
  opts.request_threads = 2;
  SwalaServer server(opts, registry_with(scripted));
  ASSERT_TRUE(server.start().is_ok());
  const auto addr = server.address();

  std::atomic<int> status{0};
  std::atomic<bool> closed{false};
  std::thread client([&] {
    http::HttpClient c(addr, 10000);
    const auto r = c.get("/cgi-bin/slow");
    if (r.is_ok()) {
      status.store(r.value().status);
      const auto conn = r.value().headers.get("Connection");
      closed.store(conn.has_value() && *conn == "close");
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // The CGI is mid-sleep: drain must wait for it, then report success.
  EXPECT_TRUE(server.drain());
  EXPECT_TRUE(server.draining());
  client.join();
  EXPECT_EQ(status.load(), 200);
  // In-flight keep-alive connections are wound down, not cut.
  EXPECT_TRUE(closed.load());
  // The listener is closed: new connections are refused.
  EXPECT_FALSE(net::TcpStream::connect(addr, 500).is_ok());
  server.stop();
}

TEST_P(OverloadTest, MalformedRequestGets400AndConnectionClose) {
  SwalaServerOptions opts = base_options();
  opts.request_threads = 1;
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value().write_all("BOGUS\r\n\r\n").is_ok());
  const std::string response = read_to_eof(conn.value(), 2000);
  // Error responses must carry Connection: close and the server must
  // actually close (read_to_eof returning proves the EOF arrived). The
  // version is HTTP/1.0: the request never parsed far enough to learn it.
  EXPECT_NE(response.find(" 400 "), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  server.stop();
}

TEST(ProcessCgiOverloadTest, ProcessCgiIsKilledAtRequestDeadline) {
  const std::string script = "/tmp/swala_overload_sleep.sh";
  {
    std::ofstream f(script);
    f << "#!/bin/sh\nsleep 5\necho 'Content-Type: text/plain'\necho\n"
         "echo done\n";
  }
  ASSERT_EQ(::chmod(script.c_str(), 0755), 0);

  cgi::ProcessCgi cgi(script);  // configured timeout stays the 30 s default
  http::Request req;
  req.method = http::Method::kGet;
  ASSERT_TRUE(http::parse_uri("/cgi-bin/sleep", &req.uri));
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = Deadline::after_ms(RealClock::instance(), 300);
  const auto result = cgi.run(req, deadline);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().success);
  EXPECT_EQ(result.value().http_status, 504);
  // SIGKILLed at the ~300 ms budget, nowhere near the 5 s sleep.
  EXPECT_LT(elapsed_ms, 3000);
}

TEST_P(OverloadTest, ConcurrentMissesCoalesceToOneExecution) {
  cgi::ScriptedOptions sopts;
  sopts.mode = cgi::ComputeMode::kSleep;
  sopts.service_seconds = 0.3;
  auto scripted = std::make_shared<cgi::ScriptedCgi>(sopts);
  core::CacheManager cache(0, 1, cache_options(), RealClock::instance());
  SwalaServerOptions opts = base_options();
  opts.request_threads = 8;
  opts.request_timeout_ms = 10000;
  SwalaServer server(opts, registry_with(scripted), &cache);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 6;
  std::atomic<int> ok200{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      http::HttpClient c(server.address(), 10000);
      const auto r = c.get("/cgi-bin/hot?q=1");
      if (r.is_ok() && r.value().status == 200) ok200.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok200.load(), kClients);
  // The miss stampede collapsed onto a single CGI execution; everyone else
  // rode it (coalesced) or hit the freshly inserted entry.
  EXPECT_EQ(scripted->execution_count(), 1u);
  const auto cs = cache.stats();
  EXPECT_EQ(cs.coalesced_misses + cs.local_hits,
            static_cast<std::uint64_t>(kClients - 1));
  server.stop();
}

}  // namespace
}  // namespace swala::server
