// Tests for CacheStore: insert/fetch/evict, capacity limits (entries and
// bytes), TTL expiry with a manual clock, the disk backend, and statistics.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/clock.h"
#include "core/store.h"

namespace swala::core {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  CacheStore make_store(StoreLimits limits,
                        PolicyKind policy = PolicyKind::kLru) {
    return CacheStore(limits, policy, std::make_unique<MemoryBackend>(),
                      &clock_, /*owner=*/0);
  }

  CacheKey key(const std::string& target) {
    return CacheKey::make("GET", target);
  }

  ManualClock clock_{from_seconds(1000.0)};
};

TEST_F(StoreTest, InsertThenFetch) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  auto meta = store.insert(key("/a"), "result-data", 2.5, 0, "text/html", 200,
                           &evicted);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().size_bytes, 11u);
  EXPECT_DOUBLE_EQ(meta.value().cost_seconds, 2.5);
  EXPECT_TRUE(evicted.empty());

  auto hit = store.fetch(key("/a").text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data, "result-data");
  EXPECT_EQ(hit->meta.access_count, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST_F(StoreTest, MissCounts) {
  auto store = make_store({10, 0});
  EXPECT_FALSE(store.fetch("GET /nothing").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(StoreTest, EntryLimitEvicts) {
  auto store = make_store({3, 0});
  std::vector<EntryMeta> evicted;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store
                    .insert(key("/e" + std::to_string(i)), "data", 1.0, 0,
                            "text/html", 200, &evicted)
                    .is_ok());
  }
  EXPECT_EQ(store.entry_count(), 3u);
  ASSERT_EQ(evicted.size(), 2u);
  // LRU: the two oldest go first.
  EXPECT_EQ(evicted[0].key, "GET /e0");
  EXPECT_EQ(evicted[1].key, "GET /e1");
  EXPECT_EQ(store.stats().evictions, 2u);
}

TEST_F(StoreTest, ByteLimitEvicts) {
  auto store = make_store({0, 100});
  std::vector<EntryMeta> evicted;
  const std::string blob40(40, 'x');
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store
                    .insert(key("/b" + std::to_string(i)), blob40, 1.0, 0,
                            "text/html", 200, &evicted)
                    .is_ok());
  }
  EXPECT_LE(store.bytes_used(), 100u);
  EXPECT_GE(evicted.size(), 2u);
}

TEST_F(StoreTest, OversizedEntryRejected) {
  auto store = make_store({0, 50});
  std::vector<EntryMeta> evicted;
  auto result = store.insert(key("/big"), std::string(100, 'x'), 1.0, 0,
                             "text/html", 200, &evicted);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(store.stats().rejected_too_large, 1u);
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST_F(StoreTest, ReplaceDoesNotLeakBytes) {
  auto store = make_store({0, 1000});
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/r"), std::string(400, 'a'), 1.0, 0, "t", 200,
                           &evicted)
                  .is_ok());
  ASSERT_TRUE(store.insert(key("/r"), std::string(300, 'b'), 1.0, 0, "t", 200,
                           &evicted)
                  .is_ok());
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.bytes_used(), 300u);
  EXPECT_TRUE(evicted.empty());
  auto hit = store.fetch(key("/r").text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data, std::string(300, 'b'));
  EXPECT_EQ(hit->meta.version, 2u);
}

TEST_F(StoreTest, TtlExpiryHidesEntry) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/ttl"), "data", 1.0, /*ttl=*/5.0, "t", 200,
                           &evicted)
                  .is_ok());
  EXPECT_TRUE(store.fetch(key("/ttl").text).has_value());
  clock_.advance(from_seconds(6.0));
  EXPECT_FALSE(store.fetch(key("/ttl").text).has_value());
  EXPECT_FALSE(store.peek(key("/ttl").text).has_value());
  // The entry still occupies a slot until purged (the purge daemon owns
  // removal so deletions are broadcast).
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST_F(StoreTest, PurgeExpiredRemovesAndReports) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/p1"), "d", 1.0, 5.0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(store.insert(key("/p2"), "d", 1.0, 100.0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(store.insert(key("/p3"), "d", 1.0, 0.0, "t", 200, &evicted).is_ok());
  clock_.advance(from_seconds(10.0));
  const auto purged = store.purge_expired();
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].key, "GET /p1");
  EXPECT_EQ(store.entry_count(), 2u);
  EXPECT_EQ(store.stats().expirations, 1u);
}

TEST_F(StoreTest, ZeroTtlNeverExpires) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/f"), "d", 1.0, 0.0, "t", 200, &evicted).is_ok());
  clock_.advance(from_seconds(1e6));
  EXPECT_TRUE(store.fetch(key("/f").text).has_value());
}

TEST_F(StoreTest, EraseReturnsMeta) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/x"), "d", 1.0, 0, "t", 200, &evicted).is_ok());
  auto erased = store.erase(key("/x").text);
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(erased->key, "GET /x");
  EXPECT_FALSE(store.erase(key("/x").text).has_value());
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
}

TEST_F(StoreTest, ClearEmptiesEverything) {
  auto store = make_store({10, 0});
  std::vector<EntryMeta> evicted;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.insert(key("/c" + std::to_string(i)), "d", 1.0, 0, "t",
                             200, &evicted)
                    .is_ok());
  }
  store.clear();
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
}

TEST_F(StoreTest, LruAccessProtectsFromEviction) {
  auto store = make_store({2, 0}, PolicyKind::kLru);
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store.insert(key("/1"), "d", 1.0, 0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(store.insert(key("/2"), "d", 1.0, 0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(store.fetch(key("/1").text).has_value());  // touch /1
  ASSERT_TRUE(store.insert(key("/3"), "d", 1.0, 0, "t", 200, &evicted).is_ok());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, "GET /2");
  EXPECT_TRUE(store.contains(key("/1").text));
}

TEST_F(StoreTest, GdsKeepsExpensiveEntryUnderPressure) {
  auto store = make_store({2, 0}, PolicyKind::kGreedyDualSize);
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(
      store.insert(key("/cheap"), "d", 0.001, 0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(
      store.insert(key("/dear"), "d", 50.0, 0, "t", 200, &evicted).is_ok());
  ASSERT_TRUE(
      store.insert(key("/new"), "d", 0.001, 0, "t", 200, &evicted).is_ok());
  EXPECT_TRUE(store.contains(key("/dear").text));
  EXPECT_FALSE(store.contains(key("/cheap").text));
}

// ---- disk backend ----

TEST(DiskBackendTest, PutGetErase) {
  const std::string dir = "/tmp/swala_disk_test";
  std::filesystem::remove_all(dir);
  DiskBackend backend(dir);
  auto id = backend.put("persisted bytes");
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  auto got = backend.get(id.value());
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), "persisted bytes");
  EXPECT_EQ(backend.bytes_stored(), 15u);
  backend.erase(id.value());
  EXPECT_FALSE(backend.get(id.value()).is_ok());
  EXPECT_EQ(backend.bytes_stored(), 0u);
}

TEST(DiskBackendTest, FilesRemovedOnDestruction) {
  const std::string dir = "/tmp/swala_disk_test2";
  std::filesystem::remove_all(dir);
  {
    DiskBackend backend(dir);
    ASSERT_TRUE(backend.put("abc").is_ok());
    ASSERT_TRUE(backend.put("def").is_ok());
    EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                            std::filesystem::directory_iterator{}),
              2);
  }
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                          std::filesystem::directory_iterator{}),
            0);
}

TEST(DiskBackendTest, StoreOverDiskBackend) {
  const std::string dir = "/tmp/swala_disk_test3";
  std::filesystem::remove_all(dir);
  ManualClock clock(0);
  CacheStore store({100, 0}, PolicyKind::kLru, std::make_unique<DiskBackend>(dir),
                   &clock, 0);
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store
                  .insert(CacheKey::make("GET", "/d"), "disk-cached", 1.0, 0,
                          "text/html", 200, &evicted)
                  .is_ok());
  auto hit = store.fetch("GET /d");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data, "disk-cached");
}

}  // namespace
}  // namespace swala::core
