// Tests for the access log: formatting/parsing roundtrip, live logging from
// a real server, and the log -> trace -> Table-1-analysis pipeline.
#include <gtest/gtest.h>

#include <filesystem>

#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "http/client.h"
#include "server/access_log.h"
#include "server/swala_server.h"
#include "workload/analyzer.h"

namespace swala::server {
namespace {

TEST(AccessLogFormatTest, Roundtrip) {
  AccessRecord original;
  original.timestamp = 1751234567.123456;
  original.method = "POST";
  original.target = "/cgi-bin/q?x=1&y=2";
  original.version = "HTTP/1.1";
  original.status = 404;
  original.bytes = 9876;
  original.service_seconds = 1.25;
  original.dynamic = true;
  original.cache_state = "hit-remote";

  AccessRecord parsed;
  ASSERT_TRUE(parse_access_line(AccessLog::format(original), &parsed));
  EXPECT_NEAR(parsed.timestamp, original.timestamp, 1e-5);
  EXPECT_EQ(parsed.method, original.method);
  EXPECT_EQ(parsed.target, original.target);
  EXPECT_EQ(parsed.version, original.version);
  EXPECT_EQ(parsed.status, original.status);
  EXPECT_EQ(parsed.bytes, original.bytes);
  EXPECT_NEAR(parsed.service_seconds, original.service_seconds, 1e-5);
  EXPECT_EQ(parsed.dynamic, original.dynamic);
  EXPECT_EQ(parsed.cache_state, original.cache_state);
}

TEST(AccessLogFormatTest, RejectsMalformed) {
  AccessRecord out;
  EXPECT_FALSE(parse_access_line("", &out));
  EXPECT_FALSE(parse_access_line("not a log line", &out));
  EXPECT_FALSE(parse_access_line("ts=abc \"GET / HTTP/1.0\" 200 0 service=0 dyn=0 cache=-", &out));
  EXPECT_FALSE(parse_access_line("ts=1.0 \"GET /\" 200 0 service=0 dyn=0 cache=-", &out));
  EXPECT_FALSE(parse_access_line("ts=1.0 \"GET / HTTP/1.0\" 999 0 service=0 dyn=0 cache=-", &out));
  EXPECT_FALSE(parse_access_line("ts=1.0 \"GET / HTTP/1.0\" 200 0 service=0 dyn=2 cache=-", &out));
}

TEST(AccessLogTest, ServerWritesAndTraceLoads) {
  const std::string log_path = "/tmp/swala_access_log_test.log";
  std::filesystem::remove(log_path);

  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions cgi_opts;
  cgi_opts.mode = cgi::ComputeMode::kSleep;
  cgi_opts.service_seconds = 0.02;
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(cgi_opts));

  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  core::CacheManager cache(0, 1, std::move(mo), RealClock::instance());

  SwalaServerOptions options;
  options.request_threads = 2;
  options.access_log_path = log_path;
  SwalaServer server(options, registry, &cache);
  ASSERT_TRUE(server.start().is_ok());
  {
    http::HttpClient client(server.address());
    ASSERT_TRUE(client.get("/cgi-bin/q?id=1").is_ok());  // miss (~20 ms)
    ASSERT_TRUE(client.get("/cgi-bin/q?id=1").is_ok());  // hit (fast)
    ASSERT_TRUE(client.get("/no-such-file").is_ok());    // static 404
  }
  server.stop();

  auto trace = load_access_log_trace(log_path);
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  ASSERT_EQ(trace.value().size(), 3u);

  EXPECT_TRUE(trace.value()[0].is_cgi);
  EXPECT_GE(trace.value()[0].service_seconds, 0.015);
  EXPECT_TRUE(trace.value()[1].is_cgi);
  EXPECT_LT(trace.value()[1].service_seconds, 0.015) << "hit must be fast";
  EXPECT_FALSE(trace.value()[2].is_cgi);

  // The §3 pipeline end-to-end: our own log through the Table-1 analyzer.
  const auto row = workload::analyze_threshold(trace.value(), 0.015);
  EXPECT_EQ(row.long_requests, 1u);

  std::filesystem::remove(log_path);
}

TEST(AccessLogTest, MissingLogPathFailsStartup) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  SwalaServerOptions options;
  options.access_log_path = "/nonexistent-dir/x.log";
  SwalaServer server(options, registry, nullptr);
  EXPECT_FALSE(server.start().is_ok());
}

TEST(AccessLogTest, LoadSkipsCorruptLines) {
  const std::string path = "/tmp/swala_access_corrupt.log";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    AccessRecord r;
    r.timestamp = 100.0;
    r.target = "/a";
    std::fputs((AccessLog::format(r) + "\n").c_str(), f);
    std::fputs("CORRUPT LINE\n", f);
    r.timestamp = 101.0;
    r.target = "/b";
    std::fputs((AccessLog::format(r) + "\n").c_str(), f);
    std::fclose(f);
  }
  auto trace = load_access_log_trace(path);
  ASSERT_TRUE(trace.is_ok());
  ASSERT_EQ(trace.value().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.value()[1].arrival_seconds, 1.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace swala::server
