// Failure-injection tests for the cluster layer: garbage on the wire,
// truncated frames, dead peers during remote fetch, node departure, and
// oversized frames. Weak consistency means a Swala group must degrade to
// local execution, never crash or deadlock.
#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "cluster/framing.h"
#include "cluster/local_cluster.h"

namespace swala::cluster {
namespace {

core::ManagerOptions open_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

void cache_on(core::CacheManager& manager, const std::string& target) {
  const auto uri = uri_of(target);
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("x"), 1.0);
}

bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 200; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(ClusterFailureTest, GarbageOnInfoPortIsDropped) {
  LocalCluster cluster(2, open_options);
  // Open a raw connection to node 0's info port and write junk.
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value().write_all("this is not a framed message").is_ok());
  conn.value().close();

  // The group keeps working: a real broadcast still goes through.
  cache_on(cluster.manager(1), "/cgi-bin/after-garbage");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-garbage")
        .has_value();
  }));
}

TEST(ClusterFailureTest, OversizedFrameRejected) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  // Length prefix claiming 1 GiB.
  const char huge[4] = {0, 0, 0, 0x40};
  ASSERT_TRUE(conn.value().write_all({huge, 4}).is_ok());
  conn.value().close();

  cache_on(cluster.manager(1), "/cgi-bin/after-oversize");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-oversize")
        .has_value();
  }));
}

TEST(ClusterFailureTest, TruncatedFrameThenDisconnect) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  const std::string frame =
      encode_message(Message::erase(1, "GET /cgi-bin/x", 1));
  ASSERT_TRUE(conn.value().write_all(frame.substr(0, frame.size() / 2)).is_ok());
  conn.value().close();  // mid-frame EOF

  cache_on(cluster.manager(1), "/cgi-bin/after-truncation");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-truncation")
        .has_value();
  }));
}

TEST(ClusterFailureTest, GarbageOnDataPortGetsNoCrash) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).data_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value().write_all("junk").is_ok());
  conn.value().shutdown_write();
  char buf[64];
  // The server just drops the connection; either EOF or nothing arrives.
  (void)conn.value().set_recv_timeout(300);
  (void)conn.value().read_some(buf, sizeof(buf));

  // Real fetch still works afterwards.
  cache_on(cluster.manager(0), "/cgi-bin/fetchable");
  auto fetched =
      cluster.group(1).fetch_remote(0, "GET /cgi-bin/fetchable");
  ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value().data, "x");
}

TEST(ClusterFailureTest, DeadOwnerFallsBackToExecution) {
  LocalCluster cluster(3, open_options);
  cache_on(cluster.manager(0), "/cgi-bin/doomed");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/doomed").has_value();
  }));

  // Node 0 dies (stops listening entirely).
  cluster.group(0).stop();

  // Node 1's lookup sees the directory entry, fails the remote fetch, and
  // reports a miss so the request thread executes locally.
  auto result = cluster.manager(1).lookup(http::Method::kGet,
                                          uri_of("/cgi-bin/doomed"));
  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  // The manager only cleans the directory on kNotFound (false hit), not on
  // connection errors — the owner may come back. Either way, no crash and
  // the request is served by local execution.
}

TEST(ClusterFailureTest, FetchOfUnknownNodeFails) {
  LocalCluster cluster(2, open_options);
  auto result = cluster.group(0).fetch_remote(77, "GET /cgi-bin/x");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFailureTest, StopIsIdempotentAndSafeConcurrently) {
  LocalCluster cluster(2, open_options);
  cache_on(cluster.manager(0), "/cgi-bin/x");
  std::thread t1([&] { cluster.group(0).stop(); });
  std::thread t2([&] { cluster.group(0).stop(); });
  t1.join();
  t2.join();
  cluster.group(0).stop();
}

TEST(ClusterFailureTest, BroadcastWhilePeerDownIsLossyNotFatal) {
  LocalCluster cluster(2, open_options);
  cluster.group(1).stop();  // peer down before the broadcast

  cache_on(cluster.manager(0), "/cgi-bin/lost");
  // Give the sender thread a moment to try (it retries then drops).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Local node is fully functional.
  auto result =
      cluster.manager(0).lookup(http::Method::kGet, uri_of("/cgi-bin/lost"));
  EXPECT_EQ(result.outcome, core::LookupOutcome::kHit);
}

}  // namespace
}  // namespace swala::cluster
