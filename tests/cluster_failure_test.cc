// Failure-injection tests for the cluster layer, driven by the deterministic
// FaultInjector (cluster/transport.h): black-holed fetches, lost broadcasts,
// slow peers, partitions with quarantine + rejoin resync — plus raw wire
// abuse (garbage, truncated and oversized frames). Weak consistency means a
// Swala group must degrade to local execution, never crash or deadlock.
//
// Synchronization discipline: no blind sleeps. Every wait is either
// LocalCluster::quiesce() (backlog drain) or eventually() (condition
// polling with a deadline), so the tests pass at the same rate under TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "cluster/framing.h"
#include "cluster/local_cluster.h"
#include "cluster/transport.h"
#include "common/hash.h"

namespace swala::cluster {
namespace {

core::ManagerOptions open_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

/// Group options with short deadlines so failure paths resolve quickly.
GroupOptions fast_options() {
  GroupOptions go;
  go.fetch_timeout_ms = 400;
  go.connect_timeout_ms = 400;
  go.broadcast_retry_limit = 2;
  go.backoff_base_ms = 5;
  go.backoff_max_ms = 20;
  go.failure_threshold = 2;
  go.probe_interval_ms = 100;
  return go;
}

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

void cache_on(core::CacheManager& manager, const std::string& target) {
  const auto uri = uri_of(target);
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("x"), 1.0);
}

bool eventually(const std::function<bool()>& pred, int max_ms = 5000) {
  for (int waited = 0; waited < max_ms; waited += 10) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---- fault-injector scenarios ----

// A black-holed FETCH_REQ must surface as a read timeout at the requester,
// which falls back to local execution within < 2x the fetch deadline and
// counts the fallback.
TEST(ClusterFailureTest, BlackholedFetchFallsBackWithinDeadline) {
  FaultInjector faults(/*seed=*/42);
  FaultRule rule;
  rule.peer = 0;
  rule.type = MsgType::kFetchReq;
  rule.kind = FaultKind::kBlackhole;
  faults.add_rule(rule);

  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         if (id == 1) go.fault_injector = &faults;
                         return go;
                       });

  cache_on(cluster.manager(0), "/cgi-bin/blackholed");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1)
        .directory()
        .lookup("GET /cgi-bin/blackholed")
        .has_value();
  }));

  const auto start = std::chrono::steady_clock::now();
  auto result = cluster.manager(1).lookup(http::Method::kGet,
                                          uri_of("/cgi-bin/blackholed"));
  const double elapsed = elapsed_ms_since(start);

  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed, 2 * 400.0) << "fallback took " << elapsed << "ms";
  EXPECT_EQ(cluster.manager(1).stats().fallback_executions, 1u);
  EXPECT_GE(faults.faults_injected(), 1u);
}

// A dropped INSERT broadcast loses the directory update: the peer executes
// the same request again (a false miss) and the original caching node
// detects the duplicate when the peer's own INSERT arrives.
TEST(ClusterFailureTest, DroppedInsertBroadcastCausesFalseMiss) {
  FaultInjector faults(/*seed=*/7);
  FaultRule rule;
  rule.peer = 1;
  rule.type = MsgType::kInsert;
  rule.kind = FaultKind::kDrop;
  rule.count = 1;  // only the first INSERT to node 1 is lost
  faults.add_rule(rule);

  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         if (id == 0) go.fault_injector = &faults;
                         return go;
                       });

  cache_on(cluster.manager(0), "/cgi-bin/dup");
  ASSERT_TRUE(cluster.quiesce());
  ASSERT_EQ(faults.faults_injected(), 1u);

  // Node 1 never heard about the entry: its directory shows a miss.
  EXPECT_FALSE(
      cluster.manager(1).directory().lookup("GET /cgi-bin/dup").has_value());
  auto result =
      cluster.manager(1).lookup(http::Method::kGet, uri_of("/cgi-bin/dup"));
  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);

  // It executes and caches its own copy; node 0 sees the duplicate insert
  // for a key it also holds — the false-miss evidence of §4.2.
  cluster.manager(1).complete(http::Method::kGet, uri_of("/cgi-bin/dup"),
                              result.rule, ok_output("x"), 1.0);
  EXPECT_TRUE(eventually(
      [&] { return cluster.manager(0).stats().false_misses == 1u; }));
}

// A peer that answers fetches slower than the requester's deadline causes a
// timeout fallback, not an indefinite hang.
TEST(ClusterFailureTest, SlowPeerFetchTimesOutAndFallsBack) {
  FaultInjector faults(/*seed=*/99);
  FaultRule rule;
  rule.peer = 1;  // responses addressed to node 1
  rule.type = MsgType::kFetchResp;
  rule.kind = FaultKind::kDelay;
  rule.delay_ms = 1500;  // well past the 400ms fetch deadline
  faults.add_rule(rule);

  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         if (id == 0) go.fault_injector = &faults;  // owner side
                         return go;
                       });

  cache_on(cluster.manager(0), "/cgi-bin/slow");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/slow").has_value();
  }));

  const auto start = std::chrono::steady_clock::now();
  auto result =
      cluster.manager(1).lookup(http::Method::kGet, uri_of("/cgi-bin/slow"));
  const double elapsed = elapsed_ms_since(start);

  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed, 2 * 400.0) << "fallback took " << elapsed << "ms";
  EXPECT_EQ(cluster.manager(1).stats().fallback_executions, 1u);
}

// Partition: after `failure_threshold` consecutive failures the survivor
// marks the peer dead, quarantines its directory table (lookups go straight
// to local execution, fast), and probes until the peer rejoins — at which
// point the stale table is cleared, a resync re-announces the peer's
// entries, and remote fetches work again.
TEST(ClusterFailureTest, PartitionQuarantineRejoinResync) {
  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [](core::NodeId) { return fast_options(); });

  cache_on(cluster.manager(0), "/cgi-bin/stable");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/stable").has_value();
  }));

  // --- partition: node 0 goes down ---
  cluster.group(0).stop();

  // Drive lookups until the circuit opens (each failed fetch records one
  // failure; threshold is 2).
  ASSERT_TRUE(eventually([&] {
    (void)cluster.manager(1).lookup(http::Method::kGet,
                                    uri_of("/cgi-bin/stable"));
    return cluster.group(1).peer_state(0) == PeerState::kDead;
  }));

  // Dead peer's table is quarantined: the entry is invisible, so the lookup
  // is a plain (fast) miss with no remote fetch attempt.
  EXPECT_TRUE(cluster.manager(1).directory().quarantined(0));
  EXPECT_FALSE(
      cluster.manager(1).directory().lookup("GET /cgi-bin/stable").has_value());
  const auto start = std::chrono::steady_clock::now();
  auto during = cluster.manager(1).lookup(http::Method::kGet,
                                          uri_of("/cgi-bin/stable"));
  EXPECT_EQ(during.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed_ms_since(start), 200.0) << "quarantined lookup not fast";

  const auto health = cluster.group(1).peer_health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].id, 0u);
  EXPECT_EQ(health[0].state, PeerState::kDead);
  EXPECT_GE(health[0].total_failures, 2u);

  // --- rejoin: node 0 comes back on the same ports ---
  ASSERT_TRUE(cluster.group(0).start().is_ok());

  // The survivor's probe finds it, closes the breaker, lifts the
  // quarantine, and the SYNC_REQ resync restores the directory entry.
  EXPECT_TRUE(eventually(
      [&] { return cluster.group(1).peer_state(0) == PeerState::kHealthy; }));
  EXPECT_TRUE(eventually([&] {
    return !cluster.manager(1).directory().quarantined(0) &&
           cluster.manager(1).directory().lookup("GET /cgi-bin/stable").has_value();
  }));
  EXPECT_GE(cluster.group(1).stats().probes_sent, 1u);
  EXPECT_GE(cluster.group(1).stats().resyncs_requested, 1u);
  EXPECT_TRUE(eventually(
      [&] { return cluster.group(0).stats().resyncs_served >= 1u; }));

  // End-to-end: the remote fetch works again.
  auto after = cluster.manager(1).lookup(http::Method::kGet,
                                         uri_of("/cgi-bin/stable"));
  EXPECT_EQ(after.outcome, core::LookupOutcome::kHit);
  EXPECT_TRUE(after.remote);
}

// A truncated-frame fault tears the connection mid-frame; the receiver
// drops the connection, the sender retries, and the breaker counts the
// failures without wedging the group.
TEST(ClusterFailureTest, TruncatedBroadcastIsRetriedAndCounted) {
  FaultInjector faults(/*seed=*/5);
  FaultRule rule;
  rule.peer = 1;
  rule.type = MsgType::kInsert;
  rule.kind = FaultKind::kTruncate;
  rule.count = 2;  // both attempts of the first INSERT are torn
  faults.add_rule(rule);

  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         if (id == 0) go.fault_injector = &faults;
                         return go;
                       });

  cache_on(cluster.manager(0), "/cgi-bin/torn");
  EXPECT_TRUE(eventually([&] {
    const auto stats = cluster.group(0).stats();
    return stats.send_failures >= 1u && stats.send_retries >= 1u;
  }));

  // A later broadcast (fault rule exhausted) still goes through.
  cache_on(cluster.manager(0), "/cgi-bin/after-torn");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(1)
        .directory()
        .lookup("GET /cgi-bin/after-torn")
        .has_value();
  }));
}

// ---- raw wire abuse (no injector: hostile bytes from outside the group) ----

TEST(ClusterFailureTest, GarbageOnInfoPortIsDropped) {
  LocalCluster cluster(2, open_options);
  // Open a raw connection to node 0's info port and write junk.
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value().write_all("this is not a framed message").is_ok());
  conn.value().close();

  // The group keeps working: a real broadcast still goes through.
  cache_on(cluster.manager(1), "/cgi-bin/after-garbage");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-garbage")
        .has_value();
  }));
}

TEST(ClusterFailureTest, OversizedFrameRejected) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  // Length prefix claiming 1 GiB.
  const char huge[4] = {0, 0, 0, 0x40};
  ASSERT_TRUE(conn.value().write_all({huge, 4}).is_ok());
  conn.value().close();

  cache_on(cluster.manager(1), "/cgi-bin/after-oversize");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-oversize")
        .has_value();
  }));
}

TEST(ClusterFailureTest, TruncatedFrameThenDisconnect) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  const std::string frame =
      encode_message(Message::erase(1, "GET /cgi-bin/x", 1));
  ASSERT_TRUE(conn.value().write_all(frame.substr(0, frame.size() / 2)).is_ok());
  conn.value().close();  // mid-frame EOF

  cache_on(cluster.manager(1), "/cgi-bin/after-truncation");
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/after-truncation")
        .has_value();
  }));
}

TEST(ClusterFailureTest, GarbageOnDataPortGetsNoCrash) {
  LocalCluster cluster(2, open_options);
  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).data_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value().write_all("junk").is_ok());
  conn.value().shutdown_write();
  char buf[64];
  // The server just drops the connection; either EOF or nothing arrives.
  (void)conn.value().set_recv_timeout(300);
  (void)conn.value().read_some(buf, sizeof(buf));

  // Real fetch still works afterwards.
  cache_on(cluster.manager(0), "/cgi-bin/fetchable");
  auto fetched =
      cluster.group(1).fetch_remote(0, "GET /cgi-bin/fetchable");
  ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value().data, "x");
}

// ---- crash / shutdown behaviour ----

TEST(ClusterFailureTest, DeadOwnerFallsBackToExecution) {
  LocalCluster cluster(3, open_options, RealClock::instance(),
                       [](core::NodeId) { return fast_options(); });
  cache_on(cluster.manager(0), "/cgi-bin/doomed");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/doomed").has_value();
  }));

  // Node 0 dies (stops listening entirely).
  cluster.group(0).stop();

  // Node 1's lookup sees the directory entry, fails the remote fetch, and
  // reports a miss so the request thread executes locally — counted as a
  // fallback, not a false hit.
  auto result = cluster.manager(1).lookup(http::Method::kGet,
                                          uri_of("/cgi-bin/doomed"));
  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_EQ(cluster.manager(1).stats().fallback_executions, 1u);
  EXPECT_EQ(cluster.manager(1).stats().false_hits, 0u);
}

// ---- partitioned / query directory-mode failures ----

core::ManagerOptions partitioned_options(core::NodeId id) {
  auto mo = open_options(id);
  mo.directory_mode = core::DirectoryMode::kPartitioned;
  return mo;
}

core::ManagerOptions query_options(core::NodeId id) {
  auto mo = open_options(id);
  mo.directory_mode = core::DirectoryMode::kQuery;
  return mo;
}

/// First /cgi-bin/ target whose cache key the default ring assigns to
/// `owner` (ring placement is seed-deterministic, so this search is too).
std::string target_owned_by(std::size_t nodes, core::NodeId owner) {
  HashRing ring;
  for (std::size_t i = 0; i < nodes; ++i) {
    ring.add_node(static_cast<std::uint32_t>(i));
  }
  for (int i = 0;; ++i) {
    const std::string target = "/cgi-bin/part" + std::to_string(i);
    if (ring.owner_of("GET " + target) == owner) return target;
  }
}

// Partitioned mode, black-holed owner probe: the requester's kQuery times
// out at query_timeout_ms and the lookup degrades to local execution well
// within the request deadline — an unreachable owner costs one short probe,
// never a hang.
TEST(ClusterFailureTest, PartitionedOwnerBlackholeFallsBackWithinDeadline) {
  FaultInjector faults(/*seed=*/21);
  FaultRule rule;
  rule.peer = 2;  // probes addressed to the ring owner
  rule.type = MsgType::kQuery;
  rule.kind = FaultKind::kBlackhole;
  faults.add_rule(rule);

  LocalCluster cluster(3, partitioned_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         go.query_timeout_ms = 200;
                         if (id == 1) go.fault_injector = &faults;
                         return go;
                       });

  const std::string target = target_owned_by(3, 2);
  ASSERT_EQ(cluster.manager(1).ring_owner_of("GET " + target), 2u);
  cache_on(cluster.manager(0), target);

  // Node 1 holds no directory state for the key (only the owner does), so
  // its lookup must probe node 2 — and the probe is black-holed.
  const auto start = std::chrono::steady_clock::now();
  auto result = cluster.manager(1).lookup(http::Method::kGet, uri_of(target));
  const double elapsed = elapsed_ms_since(start);

  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed, 2 * 200.0 + 200.0) << "fallback took " << elapsed << "ms";
  EXPECT_EQ(cluster.manager(1).stats().remote_dir_lookups, 1u);
  EXPECT_EQ(cluster.manager(1).stats().fallback_executions, 1u);
  EXPECT_GE(cluster.group(1).stats().queries_sent, 1u);
  EXPECT_GE(faults.faults_injected(), 1u);
}

// Partitioned mode, owner death and rejoin: while the owner is dead its key
// range degrades to fast local execution (quarantine, no probe), and on
// rejoin the survivor's push-state resync repopulates the owner's directory
// partition with unicast kOwnerUpdate frames.
TEST(ClusterFailureTest, PartitionedOwnerRejoinRepopulatesPartition) {
  LocalCluster cluster(2, partitioned_options, RealClock::instance(),
                       [](core::NodeId) {
                         GroupOptions go = fast_options();
                         go.query_timeout_ms = 200;
                         return go;
                       });

  // `cached` executes on node 0; its directory entry lives only on node 1,
  // the ring owner.
  const std::string cached = target_owned_by(2, 1);
  cache_on(cluster.manager(0), cached);
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET " + cached).has_value();
  }));

  // --- owner dies ---
  cluster.group(1).stop();
  const std::string probed = target_owned_by(2, 1) + "-cold";
  ASSERT_TRUE(eventually([&] {
    (void)cluster.manager(0).lookup(http::Method::kGet, uri_of(probed));
    return cluster.group(0).peer_state(1) == PeerState::kDead;
  }));

  // Quarantined range: lookups in it skip the probe and execute locally,
  // fast — the survivor pays nothing for the dead owner.
  const auto start = std::chrono::steady_clock::now();
  auto during = cluster.manager(0).lookup(http::Method::kGet, uri_of(probed));
  EXPECT_EQ(during.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed_ms_since(start), 200.0) << "quarantined lookup not fast";

  // Simulate the owner's restart wiping its in-memory partition (a real
  // process restart comes back with an empty directory).
  cluster.manager(1).on_peer_erase(0, "GET " + cached, 0);
  ASSERT_FALSE(
      cluster.manager(1).directory().lookup("GET " + cached).has_value());

  // --- owner rejoins ---
  ASSERT_TRUE(cluster.group(1).start().is_ok());
  EXPECT_TRUE(eventually(
      [&] { return cluster.group(0).peer_state(1) == PeerState::kHealthy; }));

  // The survivor's recovery resync pushes every meta the rejoined node owns
  // back to it; the owner's partition knows about node 0's copy again.
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET " + cached).has_value();
  }));
  EXPECT_GE(cluster.group(0).stats().resyncs_requested, 1u);
  EXPECT_GE(cluster.group(0).stats().owner_updates_sent, 1u);

  // End-to-end: a lookup at the owner finds node 0's copy via its own
  // repopulated partition and serves it remotely.
  auto after = cluster.manager(1).lookup(http::Method::kGet, uri_of(cached));
  EXPECT_EQ(after.outcome, core::LookupOutcome::kHit);
  EXPECT_TRUE(after.remote);
}

// Query mode, delayed kQueryHit: the probe is capped at query_timeout_ms
// and the whole sweep at the request deadline, so a slow peer can delay a
// miss by one probe timeout but never past the deadline.
TEST(ClusterFailureTest, QueryModeDelayedAnswerRespectsDeadline) {
  FaultInjector faults(/*seed=*/31);
  FaultRule rule;
  rule.peer = 0;  // answers addressed back to the requester
  rule.type = MsgType::kQueryHit;
  rule.kind = FaultKind::kDelay;
  rule.delay_ms = 1500;  // well past probe cap and request deadline
  faults.add_rule(rule);

  LocalCluster cluster(2, query_options, RealClock::instance(),
                       [&faults](core::NodeId id) {
                         GroupOptions go = fast_options();
                         go.query_timeout_ms = 200;
                         if (id == 1) go.fault_injector = &faults;
                         return go;
                       });

  cache_on(cluster.manager(1), "/cgi-bin/slow-answer");

  const auto deadline = Deadline::after_ms(RealClock::instance(), 500);
  const auto start = std::chrono::steady_clock::now();
  auto result = cluster.manager(0).lookup(
      http::Method::kGet, uri_of("/cgi-bin/slow-answer"), deadline);
  const double elapsed = elapsed_ms_since(start);

  // The answer (a hit!) never arrived in time: the lookup gives up within
  // the deadline and executes locally rather than waiting out the delay.
  EXPECT_EQ(result.outcome, core::LookupOutcome::kMissMustExecute);
  EXPECT_LT(elapsed, 500.0 + 400.0) << "lookup overran: " << elapsed << "ms";
  EXPECT_EQ(cluster.manager(0).stats().peer_queries, 1u);
  EXPECT_EQ(cluster.manager(0).stats().peer_query_hits, 0u);
  EXPECT_GE(faults.faults_injected(), 1u);
}

TEST(ClusterFailureTest, FetchOfUnknownNodeFails) {
  LocalCluster cluster(2, open_options);
  auto result = cluster.group(0).fetch_remote(77, "GET /cgi-bin/x");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFailureTest, StopIsIdempotentAndSafeConcurrently) {
  LocalCluster cluster(2, open_options);
  cache_on(cluster.manager(0), "/cgi-bin/x");
  std::thread t1([&] { cluster.group(0).stop(); });
  std::thread t2([&] { cluster.group(0).stop(); });
  t1.join();
  t2.join();
  cluster.group(0).stop();
}

TEST(ClusterFailureTest, BroadcastWhilePeerDownIsLossyNotFatal) {
  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [](core::NodeId) { return fast_options(); });
  cluster.group(1).stop();  // peer down before the broadcast

  cache_on(cluster.manager(0), "/cgi-bin/lost");
  // The bounded retry exhausts and records the failure — no unbounded
  // reconnect loop, no blocked request thread.
  EXPECT_TRUE(eventually(
      [&] { return cluster.group(0).stats().send_failures >= 1u; }));

  // Local node is fully functional.
  auto result =
      cluster.manager(0).lookup(http::Method::kGet, uri_of("/cgi-bin/lost"));
  EXPECT_EQ(result.outcome, core::LookupOutcome::kHit);
}

// ---- anti-entropy consistency repair ----

// Regression for the rejoin-staleness bug: the resync push is additions-
// only, so before the epoch exchange a node that was partitioned across an
// invalidation kept serving its pre-invalidation copy until TTL — and the
// rejoin push re-polluted the survivors' tables with the dead record. The
// HELLO-piggybacked epoch vector (no periodic digest needed: anti-entropy
// interval stays at its disabled default here) must expose the gap and the
// kInvSync pull must remove the entry on both sides.
TEST(ClusterFailureTest, RejoinPullsInvalidationMissedWhilePartitioned) {
  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [](core::NodeId) { return fast_options(); });

  cache_on(cluster.manager(1), "/cgi-bin/doomed");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/doomed")
        .has_value();
  }));

  // Partition: node 1 off the network, store intact.
  cluster.group(1).stop();
  ASSERT_TRUE(eventually([&] {
    cache_on(cluster.manager(0), "/cgi-bin/churn");  // drive the breaker
    cluster.manager(0).invalidate("GET /cgi-bin/churn*");
    return cluster.group(0).peer_state(1) == PeerState::kDead;
  }));

  // The invalidation node 1 will never hear.
  cluster.manager(0).invalidate("GET /cgi-bin/doomed*");
  EXPECT_TRUE(cluster.manager(1).store().contains("GET /cgi-bin/doomed"))
      << "node 1 is partitioned: it must still hold the stale entry";

  // Rejoin: the probe HELLO carries node 0's epoch vector; node 1 detects
  // the gap, pulls the missed invalidation and drops the stale entry.
  ASSERT_TRUE(cluster.group(1).start().is_ok());
  EXPECT_TRUE(eventually([&] {
    return !cluster.manager(1).store().contains("GET /cgi-bin/doomed");
  })) << "rejoiner kept serving an entry invalidated while it was away";

  // The resync push must not leave the dead record in node 0's table.
  EXPECT_TRUE(eventually([&] {
    return !cluster.manager(0)
                .directory()
                .lookup("GET /cgi-bin/doomed")
                .has_value();
  })) << "survivor's table re-polluted by the additions-only resync";

  const auto stats = cluster.manager(1).stats();
  EXPECT_GE(stats.inv_epoch_gaps_repaired, 1u);
  EXPECT_GE(stats.stale_serves_prevented, 1u);
  EXPECT_GE(cluster.group(1).stats().inv_syncs_pulled, 1u);
  EXPECT_TRUE(eventually(
      [&] { return cluster.group(0).stats().inv_syncs_served >= 1u; }));

  ASSERT_TRUE(cluster.quiesce());
  const auto report = cluster.check_cluster_consistency();
  EXPECT_TRUE(report.consistent()) << report.to_string();
}

// Satellite: a kDuplicate fault replays every one-way frame; version and
// epoch guards must make the second copy a no-op end to end.
TEST(ClusterFailureTest, DuplicatedFramesAreIdempotent) {
  FaultInjector faults(/*seed=*/9);
  FaultRule rule;
  rule.kind = FaultKind::kDuplicate;
  rule.probability = 1.0;
  faults.add_rule(rule);

  LocalCluster cluster(2, open_options, RealClock::instance(),
                       [&](core::NodeId id) {
                         GroupOptions go = fast_options();
                         if (id == 0) go.fault_injector = &faults;
                         return go;
                       });

  cache_on(cluster.manager(0), "/cgi-bin/dup?x=1");
  cache_on(cluster.manager(0), "/cgi-bin/dup?x=2");
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(1).directory().lookup("GET /cgi-bin/dup?x=2").has_value();
  }));
  cluster.manager(0).invalidate("GET /cgi-bin/dup?x=1*");
  ASSERT_TRUE(eventually([&] {
    return !cluster.manager(1).directory().lookup("GET /cgi-bin/dup?x=1").has_value();
  }));
  EXPECT_GE(faults.faults_injected(), 1u) << "scenario never fired";

  // The replayed kInvalidate was filtered as an exact duplicate, and the
  // replayed kInserts bumped nothing: the cluster state is exactly what a
  // fault-free run produces.
  ASSERT_TRUE(cluster.quiesce());
  const auto report = cluster.check_cluster_consistency();
  EXPECT_TRUE(report.consistent()) << report.to_string();
  EXPECT_TRUE(
      cluster.manager(1).directory().lookup("GET /cgi-bin/dup?x=2").has_value());
  auto hit =
      cluster.manager(1).lookup(http::Method::kGet, uri_of("/cgi-bin/dup?x=2"));
  EXPECT_EQ(hit.outcome, core::LookupOutcome::kHit);
}

// Tentpole over the real transport: 100% of kInvalidate frames to node 2
// are dropped; the periodic kDigest round exposes the epoch gap and node 2
// pulls the invalidation within one anti-entropy interval.
TEST(ClusterFailureTest, AntiEntropyRepairsDroppedInvalidate) {
  FaultInjector faults(/*seed=*/13);
  FaultRule rule;
  rule.peer = 2;
  rule.type = MsgType::kInvalidate;
  rule.kind = FaultKind::kDrop;
  rule.probability = 1.0;
  faults.add_rule(rule);

  LocalCluster cluster(3, open_options, RealClock::instance(),
                       [&](core::NodeId id) {
                         GroupOptions go = fast_options();
                         go.anti_entropy_interval_ms = 300;
                         if (id == 0) go.fault_injector = &faults;
                         return go;
                       });

  // Warm every info connection first: the greeting HELLO (which would
  // piggyback the epoch vector) must predate the invalidation, so only the
  // periodic kDigest round can expose the gap.
  cache_on(cluster.manager(0), "/cgi-bin/warm");
  cache_on(cluster.manager(2), "/cgi-bin/storm");  // node 2's own stale copy
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(0).directory().lookup("GET /cgi-bin/storm").has_value() &&
           cluster.manager(1).directory().lookup("GET /cgi-bin/storm").has_value() &&
           cluster.manager(2).directory().lookup("GET /cgi-bin/warm").has_value();
  }));

  cluster.manager(0).invalidate("GET /cgi-bin/storm*");
  EXPECT_TRUE(eventually([&] { return faults.faults_injected() >= 1u; }))
      << "the drop rule never fired";

  // Node 1 heard the broadcast; node 2 must recover via the digest round.
  ASSERT_TRUE(eventually([&] {
    return !cluster.manager(2).store().contains("GET /cgi-bin/storm");
  })) << "anti-entropy never repaired the dropped invalidation";

  EXPECT_GE(cluster.manager(2).stats().inv_epoch_gaps_repaired, 1u);
  EXPECT_GE(cluster.manager(2).stats().stale_serves_prevented, 1u);
  EXPECT_GE(cluster.group(2).stats().inv_syncs_pulled, 1u);
  EXPECT_TRUE(eventually([&] {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.group(i).stats().anti_entropy_rounds > 0) return true;
    }
    return false;
  }));

  ASSERT_TRUE(cluster.quiesce());
  const auto report = cluster.check_cluster_consistency();
  EXPECT_TRUE(report.consistent()) << report.to_string();
}

}  // namespace
}  // namespace swala::cluster
