// Tests for the discrete-event simulator: engine ordering, the FCFS
// resource, and cluster-model behaviours the experiments depend on
// (hit accounting vs the theoretical bound, cooperative > stand-alone,
// caching reduces response time, determinism).
#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

namespace swala::sim {
namespace {

// ---- engine ----

TEST(SimEngineTest, FiresInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngineTest, FifoWithinSameTimestamp) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngineTest, EventsMayScheduleEvents) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.schedule_in(0.5, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 1.5);
}

TEST(SimEngineTest, ClockMirrorsVirtualTime) {
  SimEngine engine;
  TimeNs seen = 0;
  engine.schedule_at(2.5, [&] { seen = engine.clock()->now(); });
  engine.run();
  EXPECT_EQ(seen, from_seconds(2.5));
}

TEST(SimEngineTest, RunUntilStopsEarly) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(SimEngineTest, PastEventsClampToNow) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.schedule_at(2.0, [&] {
    engine.schedule_at(0.5, [&] { fired_at = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

// ---- FCFS resource ----

TEST(FcfsResourceTest, SerializesJobs) {
  SimEngine engine;
  FcfsResource cpu(&engine);
  std::vector<double> completions;
  engine.schedule_at(0.0, [&] {
    cpu.submit(1.0, [&] { completions.push_back(engine.now()); });
    cpu.submit(2.0, [&] { completions.push_back(engine.now()); });
  });
  engine.schedule_at(0.5, [&] {
    cpu.submit(1.0, [&] { completions.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
  EXPECT_DOUBLE_EQ(completions[2], 4.0);  // queued behind the first two
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 4.0);
  EXPECT_EQ(cpu.jobs(), 3u);
}

TEST(FcfsResourceTest, IdleGapNotCounted) {
  SimEngine engine;
  FcfsResource cpu(&engine);
  engine.schedule_at(0.0, [&] { cpu.submit(1.0, [] {}); });
  engine.schedule_at(10.0, [&] { cpu.submit(1.0, [] {}); });
  engine.run();
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 2.0);
  EXPECT_NEAR(cpu.utilization(engine.now()), 2.0 / 11.0, 1e-9);
}

// ---- cluster model ----

workload::Trace mix_trace(std::size_t total = 1600, std::size_t unique = 1122) {
  return workload::synthesize_request_mix(total, unique, 1.0, 77);
}

TEST(ClusterSimTest, AllRequestsComplete) {
  SimConfig config;
  config.nodes = 2;
  config.client_streams = 8;
  const auto report = run_cluster_sim(mix_trace(400, 200), config);
  EXPECT_EQ(report.requests_completed, 400u);
  EXPECT_GT(report.sim_seconds, 0.0);
}

TEST(ClusterSimTest, SingleNodeInfiniteCacheReachesUpperBound) {
  // With one node, one stream, and an infinite cache there are no races:
  // hits must equal the theoretical upper bound exactly.
  const auto trace = mix_trace();
  SimConfig config;
  config.nodes = 1;
  config.client_streams = 1;
  config.limits = {0, 0};  // unlimited
  const auto report = run_cluster_sim(trace, config);
  EXPECT_EQ(report.cache.hits(), workload::hit_upper_bound(trace));
  EXPECT_EQ(report.cache.false_hits, 0u);
  EXPECT_EQ(report.cache.false_misses, 0u);
}

TEST(ClusterSimTest, CachingReducesResponseTime) {
  const auto trace = mix_trace();
  SimConfig cached;
  cached.nodes = 4;
  cached.client_streams = 16;
  SimConfig uncached = cached;
  uncached.caching = false;

  const auto with_cache = run_cluster_sim(trace, cached);
  const auto without = run_cluster_sim(trace, uncached);
  EXPECT_LT(with_cache.mean_response(), without.mean_response());
  EXPECT_LT(with_cache.sim_seconds, without.sim_seconds);
}

TEST(ClusterSimTest, CooperativeBeatsStandaloneOnSmallCaches) {
  const auto trace = mix_trace();
  SimConfig coop;
  coop.nodes = 8;
  coop.client_streams = 16;
  coop.limits = {20, 0};  // the paper's Table-6 cache size
  SimConfig standalone = coop;
  standalone.cooperative = false;

  const auto coop_report = run_cluster_sim(trace, coop);
  const auto stand_report = run_cluster_sim(trace, standalone);
  EXPECT_GT(coop_report.cache.hits(), stand_report.cache.hits());
}

TEST(ClusterSimTest, StandaloneNeverRemoteHits) {
  SimConfig config;
  config.nodes = 4;
  config.cooperative = false;
  const auto report = run_cluster_sim(mix_trace(400, 200), config);
  EXPECT_EQ(report.cache.remote_hits, 0u);
}

TEST(ClusterSimTest, CooperativeUsesRemoteHits) {
  SimConfig config;
  config.nodes = 4;
  config.client_streams = 8;
  const auto report = run_cluster_sim(mix_trace(), config);
  EXPECT_GT(report.cache.remote_hits, 0u);
}

// ---- fault injection under virtual time ----

TEST(ClusterSimTest, DroppedBroadcastsCauseFalseMissesInSim) {
  const auto trace = mix_trace();
  SimConfig clean;
  clean.nodes = 4;
  clean.client_streams = 8;

  SimConfig lossy = clean;
  cluster::FaultInjector faults(/*seed=*/11);
  cluster::FaultRule rule;
  rule.type = cluster::MsgType::kInsert;
  rule.kind = cluster::FaultKind::kDrop;
  rule.probability = 0.5;
  faults.add_rule(rule);
  lossy.faults = &faults;

  const auto clean_report = run_cluster_sim(trace, clean);
  const auto lossy_report = run_cluster_sim(trace, lossy);
  EXPECT_GT(faults.faults_injected(), 0u);
  // Lost directory updates mean peers re-execute work they would have
  // shared: strictly more false misses (duplicate caching) than a clean run.
  EXPECT_GT(lossy_report.cache.false_misses, clean_report.cache.false_misses);
  EXPECT_EQ(lossy_report.requests_completed, clean_report.requests_completed);
}

TEST(ClusterSimTest, BlackholedFetchesFallBackInSim) {
  const auto trace = mix_trace();
  SimConfig config;
  config.nodes = 4;
  config.client_streams = 8;
  cluster::FaultInjector faults(/*seed=*/23);
  cluster::FaultRule rule;
  rule.type = cluster::MsgType::kFetchReq;
  rule.kind = cluster::FaultKind::kBlackhole;
  faults.add_rule(rule);
  config.faults = &faults;

  const auto report = run_cluster_sim(trace, config);
  // Every remote fetch times out and falls back to local execution: no
  // remote hits, fallbacks counted, and every request still completes.
  EXPECT_EQ(report.cache.remote_hits, 0u);
  EXPECT_GT(report.cache.fallback_executions, 0u);
  EXPECT_EQ(report.requests_completed, trace.size());
}

TEST(ClusterSimTest, FaultRunsAreDeterministic) {
  const auto trace = mix_trace(800, 500);
  SimConfig config;
  config.nodes = 4;
  config.client_streams = 8;

  auto run_with_faults = [&](unsigned seed) {
    cluster::FaultInjector faults(seed);
    cluster::FaultRule rule;
    rule.type = cluster::MsgType::kInsert;
    rule.kind = cluster::FaultKind::kDrop;
    rule.probability = 0.3;
    faults.add_rule(rule);
    SimConfig c = config;
    c.faults = &faults;
    return run_cluster_sim(trace, c);
  };

  const auto a = run_with_faults(99);
  const auto b = run_with_faults(99);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.cache.hits(), b.cache.hits());
  EXPECT_EQ(a.cache.false_misses, b.cache.false_misses);
  EXPECT_EQ(a.cache.fallback_executions, b.cache.fallback_executions);
}

TEST(ClusterSimTest, Deterministic) {
  const auto trace = mix_trace(800, 500);
  SimConfig config;
  config.nodes = 4;
  config.client_streams = 8;
  const auto a = run_cluster_sim(trace, config);
  const auto b = run_cluster_sim(trace, config);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.cache.hits(), b.cache.hits());
  EXPECT_EQ(a.cache.false_misses, b.cache.false_misses);
  EXPECT_DOUBLE_EQ(a.mean_response(), b.mean_response());
}

TEST(ClusterSimTest, MoreNodesLowerResponseUnderLoad) {
  // The Figure-4 scaling property: with a fixed client population, adding
  // nodes reduces mean response time.
  workload::AdlOptions opts;
  opts.total_requests = 3000;
  const auto trace = workload::synthesize_adl_trace(opts);
  SimConfig config;
  config.client_streams = 16;
  config.min_exec_seconds = 0.5;

  double prev = 1e18;
  for (const std::size_t nodes : {1u, 2u, 4u, 8u}) {
    config.nodes = nodes;
    const auto report = run_cluster_sim(trace, config);
    EXPECT_LT(report.mean_response(), prev)
        << nodes << " nodes should beat " << nodes / 2;
    prev = report.mean_response();
  }
}

TEST(ClusterSimTest, ThresholdControlsInserts) {
  const auto trace = mix_trace(400, 200);
  SimConfig low;
  low.nodes = 1;
  low.client_streams = 1;
  low.min_exec_seconds = 0.0;
  SimConfig high = low;
  high.min_exec_seconds = 10.0;  // nothing qualifies (service is 1 s)

  EXPECT_GT(run_cluster_sim(trace, low).cache.inserts, 0u);
  EXPECT_EQ(run_cluster_sim(trace, high).cache.inserts, 0u);
}

TEST(ClusterSimTest, MemoryModelProducesSuperlinearSpeedup) {
  // The optional working-set memory model (ablation_memory bench): with
  // per-node memory below the single-node working set, splitting the load
  // over nodes removes thrashing and the speedup exceeds the node count.
  workload::AdlOptions opts;
  opts.total_requests = 4000;
  const auto trace = workload::synthesize_adl_trace(opts);

  std::uint64_t working_set = 0;
  {
    std::unordered_map<std::string, std::uint64_t> distinct;
    for (const auto& r : trace) distinct.emplace(r.target, r.response_bytes);
    for (const auto& [t, b] : distinct) working_set += b;
  }

  SimConfig config;
  config.client_streams = 16;
  config.min_exec_seconds = 1.0;
  config.costs.node_memory_bytes = working_set / 2;
  config.costs.thrash_slope = 1.0;

  config.nodes = 1;
  const double one = run_cluster_sim(trace, config).mean_response();
  config.nodes = 4;
  const double four = run_cluster_sim(trace, config).mean_response();
  EXPECT_GT(one / four, 4.0) << "expected superlinear speedup under memory "
                                "pressure; got " << one / four;

  // With the model disabled the same setup is at most linear.
  config.costs.node_memory_bytes = 0;
  config.nodes = 1;
  const double flat_one = run_cluster_sim(trace, config).mean_response();
  config.nodes = 4;
  const double flat_four = run_cluster_sim(trace, config).mean_response();
  EXPECT_LE(flat_one / flat_four, 4.0 + 0.1);
}

TEST(ClusterSimTest, OpenLoopFollowsArrivalTimes) {
  // Two requests 100 s apart on an idle node: responses must not queue.
  workload::Trace trace;
  trace.push_back({0.0, "/cgi-bin/a", true, 1.0, 100});
  trace.push_back({100.0, "/cgi-bin/b", true, 1.0, 100});
  SimConfig config;
  config.nodes = 1;
  config.open_loop = true;
  const auto report = run_cluster_sim(trace, config);
  EXPECT_EQ(report.requests_completed, 2u);
  // Makespan is dominated by the second arrival, not by queueing.
  EXPECT_GT(report.sim_seconds, 100.0);
  EXPECT_LT(report.sim_seconds, 103.0);
  // Each response ~ its own service time (no queueing delay).
  EXPECT_LT(report.response_times.max(), 1.5);
}

TEST(ClusterSimTest, OpenLoopBurstQueues) {
  // The same two requests arriving together must queue on one CPU.
  workload::Trace trace;
  trace.push_back({0.0, "/cgi-bin/a", true, 1.0, 100});
  trace.push_back({0.0, "/cgi-bin/b", true, 1.0, 100});
  SimConfig config;
  config.nodes = 1;
  config.open_loop = true;
  const auto report = run_cluster_sim(trace, config);
  EXPECT_GT(report.response_times.max(), 1.8) << "second request queues";
}

TEST(ClusterSimTest, OpenLoopSharesCacheAcrossNodes) {
  workload::Trace trace;
  trace.push_back({0.0, "/cgi-bin/x", true, 1.0, 100});
  trace.push_back({10.0, "/cgi-bin/x", true, 1.0, 100});  // lands on node 1
  SimConfig config;
  config.nodes = 2;
  config.open_loop = true;
  const auto report = run_cluster_sim(trace, config);
  EXPECT_EQ(report.cache.remote_hits, 1u);
}

TEST(ClusterSimTest, UtilizationReportedPerNode) {
  SimConfig config;
  config.nodes = 3;
  const auto report = run_cluster_sim(mix_trace(300, 150), config);
  ASSERT_EQ(report.cpu_utilization.size(), 3u);
  for (const double u : report.cpu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace swala::sim
