// Tests for the Common Log Format importer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "workload/analyzer.h"
#include "workload/clf.h"

namespace swala::workload {
namespace {

TEST(ClfDateTest, ParsesWithTimezone) {
  auto t = parse_clf_date("10/Oct/1997:13:55:36 -0700");
  ASSERT_TRUE(t.is_ok()) << t.status().to_string();
  // 13:55:36 -0700 == 20:55:36 UTC.
  auto utc = parse_clf_date("10/Oct/1997:20:55:36 +0000");
  ASSERT_TRUE(utc.is_ok());
  EXPECT_EQ(t.value(), utc.value());
}

TEST(ClfDateTest, ParsesWithoutTimezone) {
  EXPECT_TRUE(parse_clf_date("01/Jan/1998:00:00:00").is_ok());
}

TEST(ClfDateTest, RejectsGarbage) {
  EXPECT_FALSE(parse_clf_date("yesterday").is_ok());
  EXPECT_FALSE(parse_clf_date("10/Zzz/1997:13:55:36 -0700").is_ok());
}

TEST(ClfLineTest, CanonicalExample) {
  ClfRecord record;
  ASSERT_TRUE(parse_clf_line(
      "frank.example.com - frank [10/Oct/1997:13:55:36 -0700] "
      "\"GET /apache_pb.gif HTTP/1.0\" 200 2326",
      &record));
  EXPECT_EQ(record.host, "frank.example.com");
  EXPECT_EQ(record.method, "GET");
  EXPECT_EQ(record.target, "/apache_pb.gif");
  EXPECT_EQ(record.status, 200);
  EXPECT_EQ(record.bytes, 2326u);
}

TEST(ClfLineTest, DashBytesMeansZero) {
  ClfRecord record;
  ASSERT_TRUE(parse_clf_line(
      "h - - [10/Oct/1997:13:55:36 -0700] \"GET / HTTP/1.0\" 304 -", &record));
  EXPECT_EQ(record.bytes, 0u);
}

TEST(ClfLineTest, RejectsMalformed) {
  ClfRecord record;
  EXPECT_FALSE(parse_clf_line("", &record));
  EXPECT_FALSE(parse_clf_line("no brackets \"GET / HTTP/1.0\" 200 1", &record));
  EXPECT_FALSE(parse_clf_line(
      "h - - [10/Oct/1997:13:55:36 -0700] no-quotes 200 1", &record));
  EXPECT_FALSE(parse_clf_line(
      "h - - [10/Oct/1997:13:55:36 -0700] \"GET / HTTP/1.0\" 999 1", &record));
}

TEST(ClfLoadTest, ConvertsToTraceWithEstimates) {
  const std::string path = "/tmp/swala_clf_test.log";
  {
    std::ofstream out(path);
    out << "h1 - - [10/Oct/1997:13:55:36 -0700] \"GET /cgi-bin/q?x=1 HTTP/1.0\" 200 4000\n"
        << "h2 - - [10/Oct/1997:13:55:46 -0700] \"GET /img/map.gif HTTP/1.0\" 200 8000\n"
        << "CORRUPT\n"
        << "h3 - - [10/Oct/1997:13:56:36 -0700] \"GET /cgi-bin/q?x=1 HTTP/1.0\" 200 4000\n"
        << "h4 - - [10/Oct/1997:13:57:00 -0700] \"GET /missing HTTP/1.0\" 404 100\n";
  }
  ClfOptions options;
  options.cgi_service_seconds = 2.0;
  options.file_service_seconds = 0.05;

  auto trace = load_clf_trace(path, options);
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  ASSERT_EQ(trace.value().size(), 4u);
  EXPECT_TRUE(trace.value()[0].is_cgi);
  EXPECT_DOUBLE_EQ(trace.value()[0].service_seconds, 2.0);
  EXPECT_DOUBLE_EQ(trace.value()[0].arrival_seconds, 0.0);
  EXPECT_FALSE(trace.value()[1].is_cgi);
  EXPECT_DOUBLE_EQ(trace.value()[1].service_seconds, 0.05);
  EXPECT_DOUBLE_EQ(trace.value()[1].arrival_seconds, 10.0);
  EXPECT_DOUBLE_EQ(trace.value()[3].arrival_seconds, 84.0);

  // The repeated CGI shows up in the Table-1 analysis.
  const auto row = analyze_threshold(trace.value(), 1.0);
  EXPECT_EQ(row.total_repeats, 1u);
  EXPECT_DOUBLE_EQ(row.time_saved_seconds, 2.0);

  // only_successes filters the 404.
  options.only_successes = true;
  auto filtered = load_clf_trace(path, options);
  ASSERT_TRUE(filtered.is_ok());
  EXPECT_EQ(filtered.value().size(), 3u);

  std::filesystem::remove(path);
}

TEST(ClfLoadTest, MissingFileIsError) {
  EXPECT_FALSE(load_clf_trace("/no/such/file.log").is_ok());
}

}  // namespace
}  // namespace swala::workload
