// Robustness property tests for the HTTP request parser: random bytes,
// mutated valid requests, and adversarial chunkings must never crash,
// never loop, and always land in a defined state (kNeedMore / kDone /
// kError with a sensible status code).
#include <gtest/gtest.h>

#include "common/random.h"
#include "http/parser.h"

namespace swala::http {
namespace {

bool plausible_error_status(int status) {
  switch (status) {
    case 400:
    case 413:
    case 414:
    case 431:
    case 501:
      return true;
    default:
      return false;
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF0CCAC1A);
  for (int round = 0; round < 500; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::string junk(len, '\0');
    for (auto& c : junk) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    RequestParser parser(ParserLimits{.max_request_line = 256,
                                      .max_header_bytes = 1024,
                                      .max_body_bytes = 4096});
    const ParseState state = parser.feed(junk);
    if (state == ParseState::kError) {
      EXPECT_TRUE(plausible_error_status(parser.error_status()))
          << parser.error_status();
    }
  }
}

TEST(ParserFuzzTest, MutatedValidRequestsNeverCrash) {
  const std::string valid =
      "POST /cgi-bin/query?x=1&y=2 HTTP/1.1\r\n"
      "Host: swala.test\r\n"
      "Content-Type: text/plain\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  Rng rng(42);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    RequestParser parser;
    const ParseState state = parser.feed(mutated);
    if (state == ParseState::kError) {
      EXPECT_TRUE(plausible_error_status(parser.error_status()))
          << parser.error_status() << " for mutation round " << round;
    }
    // kDone and kNeedMore are also fine — many mutations stay valid.
  }
}

TEST(ParserFuzzTest, RandomChunkingNeverChangesOutcome) {
  const std::string wire =
      "GET /a/b%20c?q=1 HTTP/1.1\r\nHost: h\r\nX: y\r\n\r\n";
  RequestParser reference;
  ASSERT_EQ(reference.feed(wire), ParseState::kDone);
  const std::string ref_path = reference.request().uri.path;

  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    RequestParser parser;
    ParseState state = ParseState::kNeedMore;
    std::size_t pos = 0;
    while (pos < wire.size() && state == ParseState::kNeedMore) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size() - pos)));
      state = parser.feed(std::string_view(wire).substr(pos, chunk));
      pos += chunk;
    }
    ASSERT_EQ(state, ParseState::kDone);
    EXPECT_EQ(parser.request().uri.path, ref_path);
  }
}

TEST(ParserFuzzTest, LimitsBoundBuffering) {
  // A stream that never terminates its request line must be rejected once
  // it exceeds the limit, not buffered forever.
  RequestParser parser(ParserLimits{.max_request_line = 128});
  ParseState state = ParseState::kNeedMore;
  for (int i = 0; i < 64 && state == ParseState::kNeedMore; ++i) {
    state = parser.feed(std::string(16, 'a'));
  }
  ASSERT_EQ(state, ParseState::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(ParserFuzzTest, ManyTinyHeadersHitHeaderLimit) {
  RequestParser parser(ParserLimits{.max_header_bytes = 512});
  ParseState state = parser.feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 200 && state == ParseState::kNeedMore; ++i) {
    state = parser.feed("H" + std::to_string(i) + ": v\r\n");
  }
  ASSERT_EQ(state, ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(UriFuzzTest, RandomTargetsNeverCrash) {
  Rng rng(99);
  const char alphabet[] = "/abc%20?=&.+~!#[]\\^{}\"'\x01\x7f";
  for (int round = 0; round < 2000; ++round) {
    std::string target = "/";
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t i = 0; i < len; ++i) {
      target.push_back(
          alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)]);
    }
    Uri uri;
    if (parse_uri(target, &uri)) {
      // Parsed paths are always rooted and free of dot segments.
      ASSERT_FALSE(uri.path.empty());
      EXPECT_EQ(uri.path.front(), '/');
      EXPECT_EQ(uri.path.find("/../"), std::string::npos);
      (void)uri.query_params();  // must not crash either
    }
  }
}

}  // namespace
}  // namespace swala::http
