// Robustness property tests for the wire-facing parsers: the HTTP request
// parser and the cluster frame codec. Random bytes, mutated valid inputs,
// truncations, and adversarial chunkings must never crash, never loop, and
// always land in a defined state (kNeedMore / kDone / kError with a
// sensible status code; Result error for frames).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "cluster/framing.h"
#include "cluster/local_cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "http/parser.h"

namespace swala::http {
namespace {

bool plausible_error_status(int status) {
  switch (status) {
    case 400:
    case 413:
    case 414:
    case 431:
    case 501:
      return true;
    default:
      return false;
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF0CCAC1A);
  for (int round = 0; round < 500; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::string junk(len, '\0');
    for (auto& c : junk) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    RequestParser parser(ParserLimits{.max_request_line = 256,
                                      .max_header_bytes = 1024,
                                      .max_body_bytes = 4096});
    const ParseState state = parser.feed(junk);
    if (state == ParseState::kError) {
      EXPECT_TRUE(plausible_error_status(parser.error_status()))
          << parser.error_status();
    }
  }
}

TEST(ParserFuzzTest, MutatedValidRequestsNeverCrash) {
  const std::string valid =
      "POST /cgi-bin/query?x=1&y=2 HTTP/1.1\r\n"
      "Host: swala.test\r\n"
      "Content-Type: text/plain\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  Rng rng(42);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    RequestParser parser;
    const ParseState state = parser.feed(mutated);
    if (state == ParseState::kError) {
      EXPECT_TRUE(plausible_error_status(parser.error_status()))
          << parser.error_status() << " for mutation round " << round;
    }
    // kDone and kNeedMore are also fine — many mutations stay valid.
  }
}

TEST(ParserFuzzTest, RandomChunkingNeverChangesOutcome) {
  const std::string wire =
      "GET /a/b%20c?q=1 HTTP/1.1\r\nHost: h\r\nX: y\r\n\r\n";
  RequestParser reference;
  ASSERT_EQ(reference.feed(wire), ParseState::kDone);
  const std::string ref_path = reference.request().uri.path;

  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    RequestParser parser;
    ParseState state = ParseState::kNeedMore;
    std::size_t pos = 0;
    while (pos < wire.size() && state == ParseState::kNeedMore) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size() - pos)));
      state = parser.feed(std::string_view(wire).substr(pos, chunk));
      pos += chunk;
    }
    ASSERT_EQ(state, ParseState::kDone);
    EXPECT_EQ(parser.request().uri.path, ref_path);
  }
}

TEST(ParserFuzzTest, LimitsBoundBuffering) {
  // A stream that never terminates its request line must be rejected once
  // it exceeds the limit, not buffered forever.
  RequestParser parser(ParserLimits{.max_request_line = 128});
  ParseState state = ParseState::kNeedMore;
  for (int i = 0; i < 64 && state == ParseState::kNeedMore; ++i) {
    state = parser.feed(std::string(16, 'a'));
  }
  ASSERT_EQ(state, ParseState::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(ParserFuzzTest, ManyTinyHeadersHitHeaderLimit) {
  RequestParser parser(ParserLimits{.max_header_bytes = 512});
  ParseState state = parser.feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 200 && state == ParseState::kNeedMore; ++i) {
    state = parser.feed("H" + std::to_string(i) + ": v\r\n");
  }
  ASSERT_EQ(state, ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(UriFuzzTest, RandomTargetsNeverCrash) {
  Rng rng(99);
  const char alphabet[] = "/abc%20?=&.+~!#[]\\^{}\"'\x01\x7f";
  for (int round = 0; round < 2000; ++round) {
    std::string target = "/";
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t i = 0; i < len; ++i) {
      target.push_back(
          alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)]);
    }
    Uri uri;
    if (parse_uri(target, &uri)) {
      // Parsed paths are always rooted and free of dot segments.
      ASSERT_FALSE(uri.path.empty());
      EXPECT_EQ(uri.path.front(), '/');
      EXPECT_EQ(uri.path.find("/../"), std::string::npos);
      (void)uri.query_params();  // must not crash either
    }
  }
}

}  // namespace
}  // namespace swala::http

// ---- cluster wire-protocol frames (framing.cc / message.cc) ----

namespace swala::cluster {
namespace {

/// One valid frame of every message type — the seed corpus.
std::vector<std::string> frame_corpus() {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/query?x=1";
  meta.owner = 2;
  meta.size_bytes = 512;
  meta.cost_seconds = 1.25;
  meta.insert_time = 1000;
  meta.expire_time = 2000;
  meta.version = 7;

  std::vector<std::string> corpus;
  corpus.push_back(encode_message(Message::hello(1)));
  corpus.push_back(encode_message(Message::insert(2, meta)));
  corpus.push_back(encode_message(Message::erase(3, meta.key, 7)));
  corpus.push_back(encode_message(Message::fetch_req(1, meta.key)));
  corpus.push_back(
      encode_message(Message::fetch_resp_found(2, meta, "payload bytes")));
  corpus.push_back(encode_message(Message::fetch_resp_miss(2)));
  corpus.push_back(encode_message(Message::invalidate(0, "/cgi-bin/*")));
  corpus.push_back(encode_message(Message::sync_req(4)));
  corpus.push_back(encode_message(Message::owner_insert(5, meta)));
  corpus.push_back(encode_message(Message::owner_erase(5, 2, meta.key, 7)));
  corpus.push_back(encode_message(Message::query(6, meta.key)));
  corpus.push_back(encode_message(Message::query_hit(7, meta)));
  corpus.push_back(encode_message(Message::query_miss(7)));
  return corpus;
}

/// Loopback pair for exercising read_message against hostile writers.
struct StreamPair {
  net::TcpStream writer;
  net::TcpStream reader;
};

StreamPair make_pair_or_die() {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  EXPECT_TRUE(listener.is_ok());
  auto writer = net::TcpStream::connect(
      {"127.0.0.1", listener.value().local_port()}, 2000);
  EXPECT_TRUE(writer.is_ok());
  auto reader = listener.value().accept(2000);
  EXPECT_TRUE(reader.is_ok());
  EXPECT_TRUE(reader.value().set_recv_timeout(2000).is_ok());
  return {std::move(writer.value()), std::move(reader.value())};
}

TEST(ClusterFrameFuzzTest, DecodeRandomPayloadsNeverCrash) {
  Rng rng(0xC1A57E12);
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::string junk(len, '\0');
    for (auto& c : junk) c = static_cast<char>(rng.uniform_int(0, 255));
    // Must return a Status, never crash, hang, or over-read.
    (void)decode_message(junk);
  }
}

TEST(ClusterFrameFuzzTest, DecodeMutatedValidPayloadsNeverCrash) {
  const auto corpus = frame_corpus();
  Rng rng(0xBADF00D);
  for (int round = 0; round < 2000; ++round) {
    // Payload = frame minus the 4-byte length prefix.
    std::string payload =
        corpus[static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(corpus.size()) - 1))]
            .substr(4);
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations && !payload.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(payload.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          payload[pos] = static_cast<char>(rng.uniform_int(0, 255));
          break;
        case 1:
          payload.erase(pos, 1);
          break;
        case 2:
          payload.insert(pos, 1, payload[pos]);
          break;
      }
    }
    auto decoded = decode_message(payload);
    if (decoded.is_ok()) {
      // Round-trip sanity: a frame that decodes must re-encode.
      (void)encode_message(decoded.value());
    }
  }
}

TEST(ClusterFrameFuzzTest, TruncatedFramesOverWireAreErrors) {
  const auto corpus = frame_corpus();
  Rng rng(0x7126CA7E);
  for (const auto& frame : corpus) {
    // Every frame truncated at a few seeded points, including mid-prefix.
    for (int cut = 0; cut < 4; ++cut) {
      const auto keep = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(frame.size()) - 1));
      auto pair = make_pair_or_die();
      ASSERT_TRUE(pair.writer.write_all(frame.substr(0, keep)).is_ok());
      pair.writer.close();  // mid-frame EOF
      auto msg = read_message(pair.reader);
      EXPECT_FALSE(msg.is_ok()) << "truncation at " << keep << " of "
                                << frame.size() << " decoded as a message";
    }
  }
}

TEST(ClusterFrameFuzzTest, FragmentedFramesReassemble) {
  const auto corpus = frame_corpus();
  Rng rng(0xF4A63E17);
  for (const auto& frame : corpus) {
    for (int round = 0; round < 3; ++round) {
      auto pair = make_pair_or_die();
      // Write the frame in random fragments from a second thread while the
      // reader blocks in read_message — exercises partial-read paths.
      std::thread writer([&] {
        std::size_t pos = 0;
        while (pos < frame.size()) {
          const auto chunk = static_cast<std::size_t>(rng.uniform_int(
              1, static_cast<std::int64_t>(frame.size() - pos)));
          ASSERT_TRUE(
              pair.writer.write_all(frame.substr(pos, chunk)).is_ok());
          pos += chunk;
        }
      });
      auto msg = read_message(pair.reader);
      writer.join();
      ASSERT_TRUE(msg.is_ok()) << msg.status().to_string();
      EXPECT_EQ(encode_message(msg.value()), frame);
    }
  }
}

// ---- kBatch frames ----

std::string le32(std::uint32_t v) {
  std::string s(4, '\0');
  s[0] = static_cast<char>(v);
  s[1] = static_cast<char>(v >> 8);
  s[2] = static_cast<char>(v >> 16);
  s[3] = static_cast<char>(v >> 24);
  return s;
}

core::EntryMeta batch_meta() {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/batched?x=1";
  meta.owner = 0;
  meta.size_bytes = 256;
  meta.version = 3;
  return meta;
}

TEST(ClusterFrameFuzzTest, EmptyAndSingleBatchesRoundTrip) {
  const auto empty = encode_message(Message::make_batch(1, {}));
  auto decoded = decode_message(std::string_view(empty).substr(4));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().type, MsgType::kBatch);
  EXPECT_EQ(decoded.value().sender, 1u);
  EXPECT_TRUE(decoded.value().batch.empty());

  std::vector<Message> one;
  one.push_back(Message::insert(1, batch_meta()));
  const auto single = encode_message(Message::make_batch(1, std::move(one)));
  decoded = decode_message(std::string_view(single).substr(4));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().batch.size(), 1u);
  EXPECT_EQ(decoded.value().batch[0].type, MsgType::kInsert);
  EXPECT_EQ(decoded.value().batch[0].meta.key, batch_meta().key);
}

TEST(ClusterFrameFuzzTest, MixedBatchPreservesOrderAndContents) {
  std::vector<Message> inner;
  inner.push_back(Message::insert(2, batch_meta()));
  inner.push_back(Message::erase(2, batch_meta().key, 4));
  inner.push_back(Message::invalidate(2, "/cgi-bin/*"));
  const auto frame = encode_message(Message::make_batch(2, std::move(inner)));
  auto decoded = decode_message(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const auto& batch = decoded.value().batch;
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].type, MsgType::kInsert);
  EXPECT_EQ(batch[0].meta.version, 3u);
  EXPECT_EQ(batch[1].type, MsgType::kErase);
  EXPECT_EQ(batch[1].version, 4u);
  EXPECT_EQ(batch[2].type, MsgType::kInvalidate);
  EXPECT_EQ(batch[2].key, "/cgi-bin/*");
  // A batch that decodes must re-encode identically (same invariant the
  // mutation fuzzer relies on).
  EXPECT_EQ(encode_message(decoded.value()), frame);
}

TEST(ClusterFrameFuzzTest, BatchTruncatedMidInnerIsError) {
  std::vector<Message> inner;
  inner.push_back(Message::insert(2, batch_meta()));
  inner.push_back(Message::erase(2, batch_meta().key, 4));
  const auto frame = encode_message(Message::make_batch(2, std::move(inner)));
  const std::string_view payload = std::string_view(frame).substr(4);
  // Cut inside the second inner message (and at every earlier boundary-ish
  // point): the decode must fail, never return a partial batch.
  for (std::size_t keep = 10; keep < payload.size(); keep += 7) {
    auto decoded = decode_message(payload.substr(0, keep));
    EXPECT_FALSE(decoded.is_ok())
        << "batch truncated to " << keep << " bytes decoded";
  }
}

TEST(ClusterFrameFuzzTest, NestedBatchRejected) {
  std::vector<Message> leaf;
  leaf.push_back(Message::erase(3, "GET /cgi-bin/x", 1));
  std::vector<Message> outer;
  outer.push_back(Message::make_batch(3, std::move(leaf)));
  const auto frame = encode_message(Message::make_batch(3, std::move(outer)));
  auto decoded = decode_message(std::string_view(frame).substr(4));
  EXPECT_FALSE(decoded.is_ok()) << "nested batch decoded";
}

TEST(ClusterFrameFuzzTest, LyingBatchCountRejectedBeforeLooping) {
  // Header (type + sender) + a count far beyond what the payload could
  // physically hold, with no inner messages behind it.
  std::string payload;
  payload += static_cast<char>(MsgType::kBatch);
  payload += le32(9);            // sender
  payload += le32(0x00FFFFFF);   // claimed count
  auto decoded = decode_message(payload);
  EXPECT_FALSE(decoded.is_ok()) << "lying batch count decoded";
}

// ---- kOwnerUpdate / kQuery / kQueryHit frames ----

TEST(ClusterFrameFuzzTest, OwnerUpdateUnknownOpByteRejected) {
  // A valid owner-erase frame with its op byte rewritten to garbage: the
  // decoder must reject the frame, not guess an op.
  auto frame = encode_message(Message::owner_erase(1, 2, "GET /cgi-bin/x", 3));
  frame[4 + 1 + 4] = 9;  // prefix + type + sender → op byte
  auto decoded = decode_message(std::string_view(frame).substr(4));
  EXPECT_FALSE(decoded.is_ok()) << "unknown owner-update op decoded";
}

TEST(ClusterFrameFuzzTest, QueryHitTruncatedMetaRejected) {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/q";
  meta.owner = 1;
  const auto frame = encode_message(Message::query_hit(2, meta));
  const std::string_view payload = std::string_view(frame).substr(4);
  // found=1 promises a meta; every cut inside it must fail to decode.
  for (std::size_t keep = 7; keep < payload.size(); ++keep) {
    auto decoded = decode_message(payload.substr(0, keep));
    EXPECT_FALSE(decoded.is_ok())
        << "kQueryHit truncated to " << keep << " bytes decoded";
  }
}

TEST(ClusterFrameFuzzTest, QueryLyingKeyLengthRejected) {
  // kQuery whose key claims 16 MiB but carries 4 bytes.
  std::string payload;
  payload += static_cast<char>(MsgType::kQuery);
  payload += le32(3);           // sender
  payload += le32(0x01000000);  // lying key length
  payload += "key!";
  auto decoded = decode_message(payload);
  EXPECT_FALSE(decoded.is_ok()) << "lying kQuery key length decoded";
}

core::ManagerOptions fuzz_partitioned_options(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  mo.directory_mode = core::DirectoryMode::kPartitioned;
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

bool fuzz_eventually(const std::function<bool()>& pred, int max_ms = 5000) {
  for (int waited = 0; waited < max_ms; waited += 10) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Semantically hostile kOwnerUpdate frames over a real socket: mis-routed
// inserts (a partition this node does not own), out-of-range cache-node
// ids, and stale-version erases. The node must apply the true information,
// bounds-reject the impossible, ignore the stale — and never crash.
TEST(ClusterFrameFuzzTest, HostileOwnerUpdateFramesOverSocketAreHarmless) {
  LocalCluster cluster(2, fuzz_partitioned_options);

  // A key node 0 does NOT own: an owner_insert for it is mis-routed.
  std::string misrouted;
  for (int i = 0;; ++i) {
    misrouted = "GET /cgi-bin/mis" + std::to_string(i);
    if (cluster.manager(0).ring_owner_of(misrouted) != 0) break;
  }
  core::EntryMeta meta;
  meta.key = misrouted;
  meta.owner = 1;
  meta.size_bytes = 16;
  meta.version = 5;

  core::EntryMeta out_of_range = meta;
  out_of_range.key = "GET /cgi-bin/oor";
  out_of_range.owner = 77;  // no such node

  auto conn = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn.is_ok());
  std::string frames;
  frames += encode_message(Message::owner_insert(1, meta));  // mis-routed
  frames += encode_message(Message::owner_insert(1, out_of_range));
  frames += encode_message(Message::owner_erase(1, 99, misrouted, 0));
  // Stale: version 2 against the resident version 5 — must be ignored.
  frames += encode_message(Message::owner_erase(1, 1, misrouted, 2));
  ASSERT_TRUE(conn.value().write_all(frames).is_ok());
  conn.value().close();

  // Frames on one connection apply in order: once the mis-routed insert is
  // visible, the stale erase behind it has been processed too.
  ASSERT_TRUE(fuzz_eventually(
      [&] { return cluster.manager(0).directory().lookup(misrouted).has_value(); }));
  auto resident = cluster.manager(0).directory().lookup(misrouted);
  ASSERT_TRUE(resident.has_value()) << "stale-version erase removed entry";
  EXPECT_EQ(resident->version, 5u);
  EXPECT_FALSE(
      cluster.manager(0).directory().lookup("GET /cgi-bin/oor").has_value());

  // A force-erase (version 0) with the right cache node still works…
  auto conn2 = net::TcpStream::connect(
      {"127.0.0.1", cluster.group(0).info_port()}, 1000);
  ASSERT_TRUE(conn2.is_ok());
  ASSERT_TRUE(conn2.value()
                  .write_all(encode_message(
                      Message::owner_erase(1, 1, misrouted, 0)))
                  .is_ok());
  conn2.value().close();
  ASSERT_TRUE(fuzz_eventually([&] {
    return !cluster.manager(0).directory().lookup(misrouted).has_value();
  }));

  // …and the group is still alive end to end.
  http::Uri uri;
  ASSERT_TRUE(http::parse_uri("/cgi-bin/alive", &uri));
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cgi::CgiOutput out;
  out.success = true;
  out.body = "x";
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule, out, 1.0);
  EXPECT_EQ(cluster.manager(0)
                .lookup(http::Method::kGet, uri)
                .outcome,
            core::LookupOutcome::kHit);
}

// Raw kQuery exchanges over the data port, including an unexpected
// kQueryHit sent as a request: correct answers for hot and cold keys, and
// junk requests only cost the sender its connection.
TEST(ClusterFrameFuzzTest, RawQueryExchangeOverDataPort) {
  LocalCluster cluster(2, fuzz_partitioned_options);

  http::Uri uri;
  ASSERT_TRUE(http::parse_uri("/cgi-bin/hot", &uri));
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cgi::CgiOutput out;
  out.success = true;
  out.body = "x";
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule, out, 1.0);

  const auto ask = [&](const Message& request) -> Result<Message> {
    auto conn = net::TcpStream::connect(
        {"127.0.0.1", cluster.group(0).data_port()}, 1000);
    EXPECT_TRUE(conn.is_ok());
    EXPECT_TRUE(conn.value().set_recv_timeout(2000).is_ok());
    EXPECT_TRUE(conn.value().write_all(encode_message(request)).is_ok());
    return read_message(conn.value());
  };

  auto hot = ask(Message::query(1, "GET /cgi-bin/hot"));
  ASSERT_TRUE(hot.is_ok()) << hot.status().to_string();
  EXPECT_EQ(hot.value().type, MsgType::kQueryHit);
  EXPECT_TRUE(hot.value().found);
  EXPECT_EQ(hot.value().meta.key, "GET /cgi-bin/hot");

  auto cold = ask(Message::query(1, "GET /cgi-bin/cold"));
  ASSERT_TRUE(cold.is_ok()) << cold.status().to_string();
  EXPECT_EQ(cold.value().type, MsgType::kQueryHit);
  EXPECT_FALSE(cold.value().found);

  // A response type sent as a request: the server drops the connection
  // (error or EOF for us), then keeps serving real queries.
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/hot";
  auto junk = ask(Message::query_hit(1, meta));
  EXPECT_FALSE(junk.is_ok()) << "kQueryHit-as-request got an answer";

  auto again = ask(Message::query(1, "GET /cgi-bin/hot"));
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_TRUE(again.value().found);
}

TEST(ClusterFrameFuzzTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  auto pair = make_pair_or_die();
  // 1 GiB length prefix (little-endian), then nothing.
  const char huge[4] = {0, 0, 0, 0x40};
  ASSERT_TRUE(pair.writer.write_all({huge, 4}).is_ok());
  auto msg = read_message(pair.reader);
  ASSERT_FALSE(msg.is_ok());
  // Rejected by the kMaxFrameBytes guard, not by trying (and failing) to
  // read a gigabyte.
}

}  // namespace
}  // namespace swala::cluster
