// Epoll reactor server core: connection scale (1k+ idle keep-alive
// connections held while requests still serve), readiness storms with
// partial-write re-arm, keep-alive pipelining, the timer wheel, and the
// shutdown paths shared with the threaded model (mid-request 503, drain).
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cgi/scripted.h"
#include "http/client.h"
#include "server/swala_server.h"
#include "server/timer_wheel.h"

namespace swala::server {
namespace {

std::shared_ptr<cgi::HandlerRegistry> registry_with(
    std::shared_ptr<cgi::CgiHandler> handler) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  registry->mount("/cgi-bin/", std::move(handler));
  return registry;
}

std::string make_docroot(const std::string& name) {
  const std::string dir = "/tmp/swala_reactor_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/index.html") << "<html>reactor</html>";
  return dir;
}

/// Raises RLIMIT_NOFILE toward `want` fds; returns the resulting soft limit.
rlim_t raise_fd_limit(rlim_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  rlimit raised = lim;
  raised.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  return lim.rlim_cur;
}

std::string read_to_eof(net::TcpStream& stream, int timeout_ms) {
  (void)stream.set_recv_timeout(timeout_ms);
  std::string out;
  char buf[8192];
  for (;;) {
    auto n = stream.read_some(buf, sizeof(buf));
    if (!n || n.value() == 0) break;
    out.append(buf, n.value());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, FiresAtExpiryAndNotBefore) {
  TimerWheel wheel(from_millis(10), 64);
  std::vector<std::uint64_t> fired;
  wheel.advance(from_millis(5), &fired);  // establish current tick
  wheel.schedule(1, from_millis(100));
  wheel.advance(from_millis(60), &fired);
  EXPECT_TRUE(fired.empty());
  wheel.advance(from_millis(100), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, CancelSuppressesFiring) {
  TimerWheel wheel(from_millis(10), 64);
  std::vector<std::uint64_t> fired;
  wheel.advance(0, &fired);
  wheel.schedule(7, from_millis(50));
  wheel.cancel(7);
  wheel.advance(from_millis(200), &fired);
  EXPECT_TRUE(fired.empty());
}

TEST(TimerWheelTest, RescheduleMovesExpiry) {
  TimerWheel wheel(from_millis(10), 64);
  std::vector<std::uint64_t> fired;
  wheel.advance(0, &fired);
  wheel.schedule(3, from_millis(50));
  wheel.schedule(3, from_millis(300));  // idle timer pushed out by traffic
  wheel.advance(from_millis(100), &fired);
  EXPECT_TRUE(fired.empty());
  wheel.advance(from_millis(300), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(TimerWheelTest, PastDueScheduleFiresOnNextTick) {
  TimerWheel wheel(from_millis(10), 64);
  std::vector<std::uint64_t> fired;
  wheel.advance(from_millis(500), &fired);
  // A worker finishing after the deadline schedules a cut in the past; it
  // must fire on the next tick, not after a full wheel revolution.
  wheel.schedule(9, from_millis(100));
  wheel.advance(from_millis(520), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(TimerWheelTest, TimersBeyondOneRevolutionWrap) {
  TimerWheel wheel(from_millis(10), 16);  // revolution = 160 ms
  std::vector<std::uint64_t> fired;
  wheel.advance(0, &fired);
  wheel.schedule(5, from_millis(500));  // three revolutions out
  for (TimeNs t = from_millis(20); t < from_millis(500); t += from_millis(20)) {
    wheel.advance(t, &fired);
    ASSERT_TRUE(fired.empty()) << "fired early at " << t;
  }
  wheel.advance(from_millis(520), &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 5u);
}

TEST(TimerWheelTest, LongGapVisitsEverySlotOnce) {
  TimerWheel wheel(from_millis(10), 16);
  std::vector<std::uint64_t> fired;
  wheel.advance(0, &fired);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    wheel.schedule(id, from_millis(10 * static_cast<double>(id)));
  }
  // One giant advance (longer than several revolutions) must fire them all.
  wheel.advance(from_millis(10'000), &fired);
  EXPECT_EQ(fired.size(), 40u);
  EXPECT_TRUE(wheel.empty());
}

// ---------------------------------------------------------------------------
// Reactor at connection scale (epoll-only behaviours)
// ---------------------------------------------------------------------------

TEST(ReactorScaleTest, HoldsThousandIdleKeepAliveConnectionsAndStillServes) {
  constexpr std::size_t kConns = 1200;
  // Each held connection costs two fds in this process (client + server).
  if (raise_fd_limit(4 * kConns) < 3 * kConns) {
    GTEST_SKIP() << "cannot raise RLIMIT_NOFILE";
  }
  SwalaServerOptions opts;
  opts.io_model = IoModel::kEpoll;
  opts.request_threads = 2;  // worker pool; connections don't consume these
  opts.recv_timeout_ms = 60000;
  opts.docroot = make_docroot("idle_scale");
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  // A thread-per-connection server with 2 request threads could hold
  // exactly 2 of these. The reactor holds all of them on one loop thread.
  std::vector<net::TcpStream> held;
  held.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    auto conn = net::TcpStream::connect(server.address(), 5000);
    ASSERT_TRUE(conn.is_ok()) << "connect " << i << ": "
                              << conn.status().to_string();
    held.push_back(std::move(conn.value()));
  }

  // All of them make it past accept into the live gauge.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().active_connections < kConns &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().active_connections, kConns);

  // Requests still serve promptly while the 1200 idle connections are held
  // — both on a fresh connection and on one of the held keep-alive ones.
  http::HttpClient probe(server.address(), 5000);
  const auto fresh = probe.get("/index.html");
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().status, 200);

  net::TcpStream& revived = held[kConns / 2];
  ASSERT_TRUE(revived
                  .write_all("GET /index.html HTTP/1.1\r\nHost: t\r\n"
                             "Connection: close\r\n\r\n")
                  .is_ok());
  const std::string response = read_to_eof(revived, 5000);
  EXPECT_NE(response.find(" 200 "), std::string::npos) << response;
  EXPECT_NE(response.find("reactor"), std::string::npos);
  server.stop();
}

TEST(ReactorScaleTest, ReadinessStormPartialWritesAllComplete) {
  // Every connection asks for a body far larger than its shrunken receive
  // buffer, and nobody reads until every request is in flight: the reactor
  // takes a storm of EPOLLOUT readiness, writes partially, re-arms, and
  // must deliver every byte to every connection.
  constexpr std::size_t kConns = 40;
  constexpr std::size_t kBody = 1024 * 1024;
  cgi::ScriptedOptions sopts;
  sopts.output_bytes = kBody;
  auto scripted = std::make_shared<cgi::ScriptedCgi>(sopts);
  SwalaServerOptions opts;
  opts.io_model = IoModel::kEpoll;
  opts.request_threads = 4;
  opts.recv_timeout_ms = 30000;
  SwalaServer server(opts, registry_with(scripted));
  ASSERT_TRUE(server.start().is_ok());

  std::vector<net::TcpStream> conns;
  conns.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    auto conn = net::TcpStream::connect(server.address(), 5000);
    ASSERT_TRUE(conn.is_ok());
    // Tiny receive buffer (set before any data flows, freezing autotune) so
    // a 1 MB response cannot fit in kernel buffers: the write MUST stall.
    const int tiny = 4096;
    (void)::setsockopt(conn.value().raw_fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                       sizeof(tiny));
    conns.push_back(std::move(conn.value()));
  }
  for (std::size_t i = 0; i < kConns; ++i) {
    ASSERT_TRUE(conns[i]
                    .write_all("GET /cgi-bin/storm?c=" + std::to_string(i) +
                               " HTTP/1.1\r\nHost: t\r\n"
                               "Connection: close\r\n\r\n")
                    .is_ok());
  }
  // Let every response start and stall against the tiny buffers.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::atomic<std::size_t> complete{0};
  std::vector<std::thread> readers;
  readers.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    readers.emplace_back([&, i] {
      const std::string response = read_to_eof(conns[i], 20000);
      if (response.find(" 200 ") != std::string::npos &&
          response.size() >= kBody) {
        complete.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(complete.load(), kConns);
  server.stop();
}

TEST(ReactorScaleTest, PipelinedKeepAliveRequestsAllAnswered) {
  SwalaServerOptions opts;
  opts.io_model = IoModel::kEpoll;
  opts.request_threads = 2;
  opts.docroot = make_docroot("pipeline");
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::TcpStream::connect(server.address(), 5000);
  ASSERT_TRUE(conn.is_ok());
  // Ten requests in one burst; the last one closes. The reactor must pump
  // buffered pipelined bytes after each response instead of waiting for
  // fresh readiness.
  std::string burst;
  for (int i = 0; i < 9; ++i) {
    burst += "GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  burst += "GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(conn.value().write_all(burst).is_ok());
  const std::string all = read_to_eof(conn.value(), 10000);
  std::size_t responses = 0;
  for (std::size_t pos = all.find("HTTP/1.1 200");
       pos != std::string::npos; pos = all.find("HTTP/1.1 200", pos + 1)) {
    ++responses;
  }
  EXPECT_EQ(responses, 10u);
  EXPECT_EQ(server.stats().requests, 10u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Shutdown paths, both io models
// ---------------------------------------------------------------------------

class ReactorParityTest : public ::testing::TestWithParam<IoModel> {};

INSTANTIATE_TEST_SUITE_P(
    IoModels, ReactorParityTest,
    ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
    [](const ::testing::TestParamInfo<IoModel>& param) {
      return param.param == IoModel::kEpoll ? std::string("epoll")
                                            : std::string("threads");
    });

// Regression for the accept-path shutdown race: a connection whose request
// is mid-flight exactly when stop() flips running_ used to be abandoned
// silently (fd closed, no response). Both models must answer it with a 503
// + Connection: close before the server exits.
TEST_P(ReactorParityTest, MidRequestConnectionAtStopGets503NotAbandoned) {
  SwalaServerOptions opts;
  opts.io_model = GetParam();
  opts.request_threads = 1;
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  // Half a request: the server is now mid-parse on this connection.
  ASSERT_TRUE(conn.value().write_all("GET / HTTP/1.1\r\nHost: half").is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  const std::string response = read_to_eof(conn.value(), 3000);
  EXPECT_NE(response.find(" 503 "), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
}

// Epoll-only: the threaded model cannot do this — an idle keep-alive
// connection pins its request thread inside read() until the recv timeout,
// so drain can only wait it out. The reactor owns every fd and closes idle
// connections the moment drain begins.
TEST(ReactorScaleTest, DrainClosesIdleKeepAliveConnections) {
  SwalaServerOptions opts;
  opts.io_model = IoModel::kEpoll;
  opts.request_threads = 2;
  opts.docroot = make_docroot("drain_epoll");
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());

  // Establish a keep-alive connection with one completed exchange.
  auto conn = net::TcpStream::connect(server.address(), 2000);
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(
      conn.value().write_all("GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
          .is_ok());
  (void)conn.value().set_recv_timeout(2000);
  char buf[8192];
  ASSERT_TRUE(conn.value().read_some(buf, sizeof(buf)).is_ok());

  // Drain must close the idle connection (EOF) and finish in time.
  EXPECT_TRUE(server.drain());
  (void)conn.value().set_recv_timeout(3000);
  auto n = conn.value().read_some(buf, sizeof(buf));
  // Either orderly EOF or reset — but not a timeout (which would mean the
  // drain left the idle connection dangling).
  if (n.is_ok()) {
    EXPECT_EQ(n.value(), 0u);
  } else {
    EXPECT_NE(n.status().code(), StatusCode::kTimeout)
        << n.status().to_string();
  }
  // New connections are refused after drain.
  EXPECT_FALSE(net::TcpStream::connect(server.address(), 500).is_ok());
  server.stop();
}

TEST_P(ReactorParityTest, StatusReportsIoModel) {
  SwalaServerOptions opts;
  opts.io_model = GetParam();
  opts.request_threads = 1;
  opts.enable_admin = true;
  SwalaServer server(opts, nullptr);
  ASSERT_TRUE(server.start().is_ok());
  http::HttpClient client(server.address(), 3000);
  const auto r = client.get("/swala-status");
  ASSERT_TRUE(r.is_ok());
  const char* want = GetParam() == IoModel::kEpoll ? "\"io_model\": \"epoll\""
                                                   : "\"io_model\": \"threads\"";
  EXPECT_NE(r.value().body.find(want), std::string::npos) << r.value().body;
  server.stop();
}

}  // namespace
}  // namespace swala::server
