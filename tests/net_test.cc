// Tests for the socket layer: listener/stream roundtrips, timeouts, EOF
// semantics, partial reads.
#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

#include "net/socket.h"

namespace swala::net {
namespace {

TEST(TcpTest, EphemeralPortAssigned) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  EXPECT_GT(listener.value().local_port(), 0);
}

TEST(TcpTest, ConnectAcceptRoundtrip) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread client([&] {
    auto stream = TcpStream::connect(addr, 2000);
    ASSERT_TRUE(stream.is_ok()) << stream.status().to_string();
    ASSERT_TRUE(stream.value().write_all("hello").is_ok());
    char buf[16];
    ASSERT_TRUE(stream.value().read_exact(buf, 5).is_ok());
    EXPECT_EQ(std::string(buf, 5), "world");
  });

  auto conn = listener.value().accept(2000);
  ASSERT_TRUE(conn.is_ok()) << conn.status().to_string();
  char buf[16];
  ASSERT_TRUE(conn.value().read_exact(buf, 5).is_ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
  ASSERT_TRUE(conn.value().write_all("world").is_ok());
  client.join();
}

TEST(TcpTest, AcceptTimesOut) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  auto conn = listener.value().accept(/*timeout_ms=*/50);
  ASSERT_FALSE(conn.is_ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, RecvTimeout) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(server.value().set_recv_timeout(50).is_ok());
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, ReadSomeSeesEofAsZero) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  client.value().close();
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(TcpTest, ReadExactFailsOnEarlyClose) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(client.value().write_all("ab").is_ok());
  client.value().close();
  char buf[8];
  auto st = server.value().read_exact(buf, 5);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kClosed);
}

TEST(TcpTest, WriteToResetConnectionIsClosedNotIoError) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // Force an RST: close with unread data pending (SO_LINGER 0 is not
  // needed — closing a socket with data in the receive queue resets).
  ASSERT_TRUE(client.value().write_all("unread").is_ok());
  server.value().close();

  // First write may succeed (fills the kernel buffer before the RST is
  // seen); keep writing until the peer-gone error surfaces. It must be
  // kClosed — EPIPE/ECONNRESET are "peer is gone", not generic I/O faults.
  Status last = Status::ok();
  for (int i = 0; i < 200 && last.is_ok(); ++i) {
    last = client.value().write_all(std::string(4096, 'x'));
  }
  ASSERT_FALSE(last.is_ok()) << "peer close never surfaced";
  EXPECT_EQ(last.code(), StatusCode::kClosed) << last.to_string();
}

TEST(TcpTest, ReadFromResetConnectionIsClosedNotIoError) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // Close with unread inbound data → RST instead of orderly FIN.
  ASSERT_TRUE(client.value().write_all("x").is_ok());
  ASSERT_TRUE(server.value().write_all("unread-by-client").is_ok());
  client.value().close();

  char buf[64];
  // Drain whatever was buffered; the reset must arrive as kClosed (or an
  // orderly EOF if the kernel raced the close), never kIoError.
  for (int i = 0; i < 10; ++i) {
    auto n = server.value().read_some(buf, sizeof(buf));
    if (n.is_ok()) {
      if (n.value() == 0) return;  // orderly EOF — acceptable
      continue;
    }
    EXPECT_EQ(n.status().code(), StatusCode::kClosed) << n.status().to_string();
    return;
  }
  FAIL() << "neither EOF nor reset surfaced";
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  std::uint16_t port;
  {
    auto listener = TcpListener::listen({"127.0.0.1", 0});
    ASSERT_TRUE(listener.is_ok());
    port = listener.value().local_port();
  }
  auto stream = TcpStream::connect({"127.0.0.1", port}, 500);
  EXPECT_FALSE(stream.is_ok());
}

TEST(TcpTest, BadAddressRejected) {
  auto stream = TcpStream::connect({"not-an-ip", 80}, 100);
  ASSERT_FALSE(stream.is_ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(TcpTest, LargeTransfer) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  const std::string payload(2 * 1024 * 1024, 'z');

  std::thread sender([&] {
    auto stream = TcpStream::connect(addr, 2000);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_TRUE(stream.value().write_all(payload).is_ok());
  });

  auto conn = listener.value().accept(2000);
  ASSERT_TRUE(conn.is_ok());
  std::string received(payload.size(), '\0');
  ASSERT_TRUE(conn.value().read_exact(received.data(), received.size()).is_ok());
  EXPECT_EQ(received, payload);
  sender.join();
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  UniqueFd a(::dup(0));
  ASSERT_TRUE(a.valid());
  const int raw = a.get();
  UniqueFd b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
}

TEST(InetAddressTest, ToString) {
  InetAddress addr{"10.0.0.1", 8080};
  EXPECT_EQ(addr.to_string(), "10.0.0.1:8080");
}

}  // namespace
}  // namespace swala::net
