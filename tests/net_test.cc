// Tests for the socket layer: listener/stream roundtrips, timeouts, EOF
// semantics, partial reads.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace swala::net {
namespace {

TEST(TcpTest, EphemeralPortAssigned) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  EXPECT_GT(listener.value().local_port(), 0);
}

TEST(TcpTest, ConnectAcceptRoundtrip) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  std::thread client([&] {
    auto stream = TcpStream::connect(addr, 2000);
    ASSERT_TRUE(stream.is_ok()) << stream.status().to_string();
    ASSERT_TRUE(stream.value().write_all("hello").is_ok());
    char buf[16];
    ASSERT_TRUE(stream.value().read_exact(buf, 5).is_ok());
    EXPECT_EQ(std::string(buf, 5), "world");
  });

  auto conn = listener.value().accept(2000);
  ASSERT_TRUE(conn.is_ok()) << conn.status().to_string();
  char buf[16];
  ASSERT_TRUE(conn.value().read_exact(buf, 5).is_ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
  ASSERT_TRUE(conn.value().write_all("world").is_ok());
  client.join();
}

TEST(TcpTest, AcceptTimesOut) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  auto conn = listener.value().accept(/*timeout_ms=*/50);
  ASSERT_FALSE(conn.is_ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, RecvTimeout) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(server.value().set_recv_timeout(50).is_ok());
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, ReadSomeSeesEofAsZero) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  client.value().close();
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(TcpTest, ReadExactFailsOnEarlyClose) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(client.value().write_all("ab").is_ok());
  client.value().close();
  char buf[8];
  auto st = server.value().read_exact(buf, 5);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kClosed);
}

TEST(TcpTest, WriteToResetConnectionIsClosedNotIoError) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // Force an RST: close with unread data pending (SO_LINGER 0 is not
  // needed — closing a socket with data in the receive queue resets).
  ASSERT_TRUE(client.value().write_all("unread").is_ok());
  server.value().close();

  // First write may succeed (fills the kernel buffer before the RST is
  // seen); keep writing until the peer-gone error surfaces. It must be
  // kClosed — EPIPE/ECONNRESET are "peer is gone", not generic I/O faults.
  Status last = Status::ok();
  for (int i = 0; i < 200 && last.is_ok(); ++i) {
    last = client.value().write_all(std::string(4096, 'x'));
  }
  ASSERT_FALSE(last.is_ok()) << "peer close never surfaced";
  EXPECT_EQ(last.code(), StatusCode::kClosed) << last.to_string();
}

TEST(TcpTest, ReadFromResetConnectionIsClosedNotIoError) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};

  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // Close with unread inbound data → RST instead of orderly FIN.
  ASSERT_TRUE(client.value().write_all("x").is_ok());
  ASSERT_TRUE(server.value().write_all("unread-by-client").is_ok());
  client.value().close();

  char buf[64];
  // Drain whatever was buffered; the reset must arrive as kClosed (or an
  // orderly EOF if the kernel raced the close), never kIoError.
  for (int i = 0; i < 10; ++i) {
    auto n = server.value().read_some(buf, sizeof(buf));
    if (n.is_ok()) {
      if (n.value() == 0) return;  // orderly EOF — acceptable
      continue;
    }
    EXPECT_EQ(n.status().code(), StatusCode::kClosed) << n.status().to_string();
    return;
  }
  FAIL() << "neither EOF nor reset surfaced";
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  std::uint16_t port;
  {
    auto listener = TcpListener::listen({"127.0.0.1", 0});
    ASSERT_TRUE(listener.is_ok());
    port = listener.value().local_port();
  }
  auto stream = TcpStream::connect({"127.0.0.1", port}, 500);
  EXPECT_FALSE(stream.is_ok());
}

TEST(TcpTest, BadAddressRejected) {
  auto stream = TcpStream::connect({"not-an-ip", 80}, 100);
  ASSERT_FALSE(stream.is_ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(TcpTest, LargeTransfer) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  const std::string payload(2 * 1024 * 1024, 'z');

  std::thread sender([&] {
    auto stream = TcpStream::connect(addr, 2000);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_TRUE(stream.value().write_all(payload).is_ok());
  });

  auto conn = listener.value().accept(2000);
  ASSERT_TRUE(conn.is_ok());
  std::string received(payload.size(), '\0');
  ASSERT_TRUE(conn.value().read_exact(received.data(), received.size()).is_ok());
  EXPECT_EQ(received, payload);
  sender.join();
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  UniqueFd a(::dup(0));
  ASSERT_TRUE(a.valid());
  const int raw = a.get();
  UniqueFd b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
}

TEST(InetAddressTest, ToString) {
  InetAddress addr{"10.0.0.1", 8080};
  EXPECT_EQ(addr.to_string(), "10.0.0.1:8080");
}

// ---------------------------------------------------------------------------
// EINTR discipline. A handler installed without SA_RESTART makes every
// blocking syscall on the signalled thread return EINTR; the layer must
// resume with the *remaining* time, not restart the full timeout. Under the
// old restart-on-EINTR behaviour a steady signal storm pushed the return
// past the storm's end, so these tests bound total elapsed time.
// ---------------------------------------------------------------------------

void eintr_noop_handler(int) {}

/// Pummels `victim` with SIGUSR1 every few ms until told to stop.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t victim) : victim_(victim) {
    struct sigaction sa {};
    sa.sa_handler = eintr_noop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR1, &sa, &old_);
    storm_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        pthread_kill(victim_, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  ~SignalStorm() {
    stop_.store(true, std::memory_order_relaxed);
    storm_.join();
    sigaction(SIGUSR1, &old_, nullptr);
  }

 private:
  pthread_t victim_;
  struct sigaction old_ {};
  std::atomic<bool> stop_{false};
  std::thread storm_;
};

TEST(EintrTest, WaitReadableHonorsTotalTimeoutUnderSignalStorm) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  SignalStorm storm(pthread_self());
  const auto start = std::chrono::steady_clock::now();
  // Nothing is ever written, so this must time out — after ~300 ms, not
  // after the storm ends (a signal lands every 20 ms, so restarting the
  // full timeout on each EINTR would keep this polling forever).
  EXPECT_FALSE(wait_readable(client.value().raw_fd(), 300));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 250);
  EXPECT_LT(elapsed.count(), 1500) << "EINTR restarted the full timeout";
}

TEST(EintrTest, ReadSomeBoundsTotalTimeUnderSignalStorm) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(server.value().set_recv_timeout(300).is_ok());

  SignalStorm storm(pthread_self());
  const auto start = std::chrono::steady_clock::now();
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.status().code(), StatusCode::kTimeout);
  EXPECT_GE(elapsed.count(), 250);
  EXPECT_LT(elapsed.count(), 1500)
      << "SO_RCVTIMEO restarts per recv; the wrapper must bound the total";
}

TEST(EintrTest, ConnectTimeoutSurvivesSignalStorm) {
  // A listener whose accept queue is full drops further SYNs, so the next
  // connect() blocks in retransmission until its timeout.
  auto listener = TcpListener::listen({"127.0.0.1", 0}, /*backlog=*/1);
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  std::vector<TcpStream> fillers;
  for (int i = 0; i < 8; ++i) {
    auto filler = TcpStream::connect(addr, 200);
    if (!filler.is_ok()) break;  // queue full — exactly the state we want
    fillers.push_back(std::move(filler.value()));
  }

  SignalStorm storm(pthread_self());
  const auto start = std::chrono::steady_clock::now();
  auto stream = TcpStream::connect(addr, 300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(stream.is_ok());
  EXPECT_LT(elapsed.count(), 1500)
      << "EINTR restarted connect's full timeout";
}

TEST(TimeoutClampTest, NegativeTimeoutMeansUnlimitedNotGarbage) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // Negative clamps to 0 = unlimited (consistent with Deadline); the old
  // code fed the raw value into timeval where it could truncate into a
  // sub-second timeout or fail outright.
  ASSERT_TRUE(server.value().set_recv_timeout(-7).is_ok());
  ASSERT_TRUE(server.value().set_send_timeout(-7).is_ok());
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_TRUE(client.value().write_all("late").is_ok());
  });
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  writer.join();
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();
  EXPECT_EQ(n.value(), 4u);
}

TEST(TimeoutClampTest, HugeTimeoutDoesNotOverflowTimeval) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());

  // INT_MAX ms is ~24.8 days; the seconds/microseconds split must not
  // truncate through a narrower field and wrap into "immediate timeout".
  ASSERT_TRUE(server.value()
                  .set_recv_timeout(std::numeric_limits<int>::max())
                  .is_ok());
  ASSERT_TRUE(client.value().write_all("ok").is_ok());
  char buf[8];
  auto n = server.value().read_some(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 2u);
}

TEST(NonBlockingTest, ReadNbReportsWouldBlockThenData) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept(2000);
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(server.value().set_nonblocking(true).is_ok());

  char buf[8];
  auto n = server.value().read_nb(buf, sizeof(buf));
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.status().code(), StatusCode::kWouldBlock);

  ASSERT_TRUE(client.value().write_all("now").is_ok());
  ASSERT_TRUE(wait_readable(server.value().raw_fd(), 2000));
  n = server.value().read_nb(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 3u);
}

TEST(NonBlockingTest, TryAcceptReportsWouldBlockThenConnection) {
  auto listener = TcpListener::listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.is_ok());
  ASSERT_TRUE(listener.value().set_nonblocking(true).is_ok());

  auto none = listener.value().try_accept();
  ASSERT_FALSE(none.is_ok());
  EXPECT_EQ(none.status().code(), StatusCode::kWouldBlock);

  const InetAddress addr{"127.0.0.1", listener.value().local_port()};
  auto client = TcpStream::connect(addr, 2000);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(wait_readable(listener.value().raw_fd(), 2000));
  auto conn = listener.value().try_accept();
  ASSERT_TRUE(conn.is_ok()) << conn.status().to_string();
}

}  // namespace
}  // namespace swala::net
