// Multi-process deployment test: two real swalad processes (separate
// address spaces, config files, real fork/exec CGI scripts) form a
// cooperative group over TCP, exactly as a production deployment would.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "http/client.h"
#include "net/socket.h"

#ifndef SWALA_SWALAD_PATH
#define SWALA_SWALAD_PATH "./swalad"
#endif

namespace swala {
namespace {

const std::string kRoot = "/tmp/swala_deployment_test";

std::uint16_t grab_free_port() {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  EXPECT_TRUE(listener.is_ok());
  return listener.value().local_port();
  // Listener closes here; the port is very likely still free when swalad
  // binds it a moment later.
}

void write_file(const std::string& path, const std::string& content,
                bool executable = false) {
  std::ofstream out(path);
  out << content;
  out.close();
  if (executable) ::chmod(path.c_str(), 0755);
}

struct NodeProcess {
  pid_t pid = -1;
  std::uint16_t http_port = 0;
};

class DeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::filesystem::remove_all(kRoot);
    std::filesystem::create_directories(kRoot + "/cgi-bin");
    // A real CGI script: ~50 ms of "work", deterministic output.
    write_file(kRoot + "/cgi-bin/lookup",
               "#!/bin/sh\n"
               "sleep 0.05\n"
               "printf 'Content-Type: text/plain\\n\\nresult for %s\\n' \"$QUERY_STRING\"\n",
               /*executable=*/true);

    // Ports: 2 http + 2 info + 2 data.
    for (auto& port : ports_) port = grab_free_port();

    for (int node = 0; node < 2; ++node) {
      const std::string conf_path =
          kRoot + "/node" + std::to_string(node) + ".conf";
      std::string conf;
      conf += "[server]\n";
      conf += "port = " + std::to_string(ports_[node]) + "\n";
      conf += "threads = 4\n";
      conf += "admin = true\n";
      conf += "cgi_dir = " + kRoot + "/cgi-bin\n";
      conf += "[cache]\nenabled = true\nmax_entries = 100\n";
      conf += "[cacheability]\nrule = /cgi-bin/* cache\ndefault = nocache\n";
      conf += "[cluster]\n";
      conf += "node_id = " + std::to_string(node) + "\n";
      conf += "member = 0 127.0.0.1 " + std::to_string(ports_[2]) + " " +
              std::to_string(ports_[4]) + "\n";
      conf += "member = 1 127.0.0.1 " + std::to_string(ports_[3]) + " " +
              std::to_string(ports_[5]) + "\n";
      write_file(conf_path, conf);

      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        const char* binary = SWALA_SWALAD_PATH;
        ::execl(binary, binary, conf_path.c_str(), nullptr);
        _exit(127);
      }
      nodes_[node].pid = pid;
      nodes_[node].http_port = ports_[node];
    }

    // Wait for both HTTP ports to come up.
    for (const auto& node : nodes_) {
      ASSERT_TRUE(wait_for_http(node.http_port)) << "node did not start";
    }
  }

  void TearDown() override {
    for (const auto& node : nodes_) {
      if (node.pid > 0) {
        ::kill(node.pid, SIGTERM);
        int status = 0;
        ::waitpid(node.pid, &status, 0);
      }
    }
    std::filesystem::remove_all(kRoot);
  }

  static bool wait_for_http(std::uint16_t port) {
    for (int i = 0; i < 300; ++i) {
      auto conn = net::TcpStream::connect({"127.0.0.1", port}, 200);
      if (conn.is_ok()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::array<std::uint16_t, 6> ports_{};
  std::array<NodeProcess, 2> nodes_{};
};

TEST_F(DeploymentTest, CrossProcessCooperativeCaching) {
  // Execute on node 0.
  http::HttpClient node0({"127.0.0.1", nodes_[0].http_port});
  auto miss = node0.get("/cgi-bin/lookup?city=goleta");
  ASSERT_TRUE(miss.is_ok()) << miss.status().to_string();
  EXPECT_EQ(miss.value().status, 200);
  EXPECT_EQ(miss.value().headers.get("X-Swala-Cache"), "miss");
  EXPECT_NE(miss.value().body.find("result for city=goleta"),
            std::string::npos);

  // Node 1 must learn of it and serve a remote hit without re-running the
  // CGI (the broadcast travels over real TCP between processes).
  http::HttpClient node1({"127.0.0.1", nodes_[1].http_port});
  bool remote_hit = false;
  std::string body;
  for (int attempt = 0; attempt < 100 && !remote_hit; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto resp = node1.get("/cgi-bin/lookup?city=goleta");
    ASSERT_TRUE(resp.is_ok());
    const auto state = resp.value().headers.get("X-Swala-Cache");
    ASSERT_TRUE(state.has_value());
    if (*state == "hit-remote") {
      remote_hit = true;
      body = resp.value().body;
    } else if (*state == "hit-local") {
      // Node 1 executed it concurrently before the broadcast arrived (a
      // false miss); treat its local copy as success for the data check.
      remote_hit = true;
      body = resp.value().body;
    }
  }
  ASSERT_TRUE(remote_hit) << "node 1 never served from the shared cache";
  EXPECT_EQ(body, miss.value().body);

  // Node 0 serves its own copy locally.
  auto local = node0.get("/cgi-bin/lookup?city=goleta");
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().headers.get("X-Swala-Cache"), "hit-local");
}

TEST_F(DeploymentTest, AdminInvalidationPropagatesAcrossProcesses) {
  http::HttpClient node0({"127.0.0.1", nodes_[0].http_port});
  ASSERT_TRUE(node0.get("/cgi-bin/lookup?city=isla-vista").is_ok());

  // Wait until node 1 knows the entry.
  http::HttpClient node1({"127.0.0.1", nodes_[1].http_port});
  bool known = false;
  for (int i = 0; i < 100 && !known; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto resp = node1.get("/cgi-bin/lookup?city=isla-vista");
    ASSERT_TRUE(resp.is_ok());
    known = resp.value().headers.get("X-Swala-Cache") != "miss";
  }
  ASSERT_TRUE(known);

  // Invalidate via node 1's admin endpoint; node 0's copy must vanish too.
  auto inv = node1.get("/swala-admin/invalidate?pattern=*isla-vista*");
  ASSERT_TRUE(inv.is_ok());
  EXPECT_EQ(inv.value().status, 200);

  bool gone = false;
  for (int i = 0; i < 100 && !gone; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto resp = node0.get("/swala-status");
    ASSERT_TRUE(resp.is_ok());
    gone = resp.value().body.find("\"cache_entries\": 0") != std::string::npos;
  }
  EXPECT_TRUE(gone) << "invalidation did not reach node 0's store";
}

}  // namespace
}  // namespace swala
