// Tests for the server layer: request handling (static + dynamic + errors),
// the SwalaServer over real sockets, keep-alive, cache integration, the two
// baseline servers, and SwalaNode config assembly.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cgi/scripted.h"
#include "http/client.h"
#include "server/baselines.h"
#include "server/node.h"
#include "server/swala_server.h"

namespace swala::server {
namespace {

std::shared_ptr<cgi::HandlerRegistry> make_registry() {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions opts;
  opts.output_bytes = 128;
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(opts));
  return registry;
}

std::string make_docroot(const std::string& name) {
  const std::string dir = "/tmp/swala_server_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir + "/sub");
  std::ofstream(dir + "/index.html") << "<html>home</html>";
  std::ofstream(dir + "/sub/page.txt") << "plain text content";
  return dir;
}

core::ManagerOptions cache_options() {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

// ---- handle_request unit-level ----

TEST(HandleRequestTest, StaticFileServed) {
  ServeContext ctx;
  ctx.docroot = make_docroot("hr1");
  http::Request req;
  req.method = http::Method::kGet;
  ASSERT_TRUE(http::parse_uri("/sub/page.txt", &req.uri));
  const auto resp = handle_request(req, ctx);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "plain text content");
  EXPECT_EQ(resp.headers.get("Content-Type"), "text/plain");
  EXPECT_TRUE(resp.headers.contains("Last-Modified"));
}

TEST(HandleRequestTest, DirectoryServesIndexHtml) {
  ServeContext ctx;
  ctx.docroot = make_docroot("hr2");
  http::Request req;
  ASSERT_TRUE(http::parse_uri("/", &req.uri));
  const auto resp = handle_request(req, ctx);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "<html>home</html>");
}

TEST(HandleRequestTest, MissingFileIs404) {
  ServeContext ctx;
  ctx.docroot = make_docroot("hr3");
  http::Request req;
  ASSERT_TRUE(http::parse_uri("/nope.html", &req.uri));
  EXPECT_EQ(handle_request(req, ctx).status, 404);
}

TEST(HandleRequestTest, ConditionalGetReturns304) {
  ServeContext ctx;
  ctx.docroot = make_docroot("hr304");
  http::Request req;
  ASSERT_TRUE(http::parse_uri("/index.html", &req.uri));

  const auto fresh = handle_request(req, ctx);
  ASSERT_EQ(fresh.status, 200);
  const auto last_modified = fresh.headers.get("Last-Modified");
  ASSERT_TRUE(last_modified.has_value());

  req.headers.set("If-Modified-Since", *last_modified);
  const auto conditional = handle_request(req, ctx);
  EXPECT_EQ(conditional.status, 304);
  EXPECT_TRUE(conditional.body.empty());

  // A stale validator gets fresh content.
  req.headers.set("If-Modified-Since", "Sun, 06 Nov 1994 08:49:37 GMT");
  EXPECT_EQ(handle_request(req, ctx).status, 200);

  // A malformed validator is ignored (fresh content, not an error).
  req.headers.set("If-Modified-Since", "yesterday-ish");
  EXPECT_EQ(handle_request(req, ctx).status, 200);
}

TEST(HandleRequestTest, UnsupportedMethodIs405) {
  ServeContext ctx;
  http::Request req;
  req.method = http::Method::kDelete;
  ASSERT_TRUE(http::parse_uri("/x", &req.uri));
  EXPECT_EQ(handle_request(req, ctx).status, 405);
}

TEST(HandleRequestTest, DynamicDispatchedToRegistry) {
  ServeContext ctx;
  ctx.registry = make_registry();
  http::Request req;
  ASSERT_TRUE(http::parse_uri("/cgi-bin/q?x=1", &req.uri));
  const auto resp = handle_request(req, ctx);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers.get("X-Swala-Cache"), "miss");
}

TEST(HandleRequestTest, HeadHasNoBodyButLength) {
  ServeContext ctx;
  ctx.docroot = make_docroot("hr4");
  http::Request req;
  req.method = http::Method::kHead;
  ASSERT_TRUE(http::parse_uri("/index.html", &req.uri));
  const auto resp = handle_request(req, ctx);
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(resp.headers.get("Content-Length"), "17");
}

// ---- SwalaServer over sockets ----

class SwalaServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SwalaServerOptions opts;
    opts.request_threads = 4;
    opts.docroot = make_docroot("srv");
    manager_ = std::make_unique<core::CacheManager>(
        0, 1, cache_options(), RealClock::instance());
    server_ = std::make_unique<SwalaServer>(opts, make_registry(),
                                            manager_.get());
    ASSERT_TRUE(server_->start().is_ok());
  }

  std::unique_ptr<core::CacheManager> manager_;
  std::unique_ptr<SwalaServer> server_;
};

TEST_F(SwalaServerTest, ServesStaticFile) {
  http::HttpClient client(server_->address());
  auto resp = client.get("/index.html");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "<html>home</html>");
  EXPECT_EQ(resp.value().headers.get("Server"), "Swala/1.0");
}

TEST_F(SwalaServerTest, CgiMissThenLocalHit) {
  http::HttpClient client(server_->address());
  auto first = client.get("/cgi-bin/q?id=9");
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().headers.get("X-Swala-Cache"), "miss");

  auto second = client.get("/cgi-bin/q?id=9");
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().headers.get("X-Swala-Cache"), "hit-local");
  EXPECT_EQ(second.value().body, first.value().body);

  const auto stats = server_->stats();
  EXPECT_EQ(stats.dynamic_requests, 2u);
  EXPECT_EQ(stats.cache_hits_local, 1u);
}

TEST_F(SwalaServerTest, HeadRequestOverClient) {
  // HEAD responses carry Content-Length but no body; the client must not
  // wait for bytes that will never come.
  http::HttpClient client(server_->address());
  http::Request req;
  req.method = http::Method::kHead;
  req.target = "/index.html";
  req.version = http::Version::kHttp11;
  req.headers.set("Host", "test");
  auto resp = client.send(req);
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_TRUE(resp.value().body.empty());
  EXPECT_EQ(resp.value().headers.get("Content-Length"), "17");

  // The connection remains usable for a normal GET afterwards.
  auto follow_up = client.get("/index.html");
  ASSERT_TRUE(follow_up.is_ok());
  EXPECT_EQ(follow_up.value().body, "<html>home</html>");
  EXPECT_EQ(server_->stats().connections, 1u) << "keep-alive must survive HEAD";
}

TEST_F(SwalaServerTest, KeepAliveServesMultipleRequests) {
  http::HttpClient client(server_->address());
  for (int i = 0; i < 5; ++i) {
    auto resp = client.get("/index.html");
    ASSERT_TRUE(resp.is_ok()) << "request " << i;
    EXPECT_EQ(resp.value().status, 200);
  }
  // All five went over one connection.
  EXPECT_EQ(server_->stats().connections, 1u);
  EXPECT_EQ(server_->stats().requests, 5u);
}

TEST_F(SwalaServerTest, ParallelClients) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      http::HttpClient client(server_->address());
      for (int i = 0; i < 10; ++i) {
        auto resp = client.get("/cgi-bin/p?i=" + std::to_string(i));
        if (resp.is_ok() && resp.value().status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 10);
}

TEST_F(SwalaServerTest, UnknownMethodGets501) {
  auto stream = net::TcpStream::connect(server_->address(), 2000);
  ASSERT_TRUE(stream.is_ok());
  ASSERT_TRUE(stream.value().write_all("GARBAGE REQUEST LINE\r\n\r\n").is_ok());
  char buf[1024];
  auto n = stream.value().read_some(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok());
  const std::string head(buf, n.value());
  EXPECT_NE(head.find("501"), std::string::npos);  // unknown method
}

TEST_F(SwalaServerTest, StopIsIdempotent) {
  server_->stop();
  server_->stop();
}

// ---- baselines ----

TEST(AcceptModelTest, AcceptorQueueServesRequests) {
  SwalaServerOptions options;
  options.request_threads = 4;
  options.accept_model = AcceptModel::kAcceptorQueue;
  options.docroot = make_docroot("aq");
  core::CacheManager manager(0, 1, cache_options(), RealClock::instance());
  SwalaServer server(options, make_registry(), &manager);
  ASSERT_TRUE(server.start().is_ok());
  {
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&] {
        http::HttpClient client(server.address());
        for (int i = 0; i < 8; ++i) {
          auto resp = client.get("/cgi-bin/q?i=" + std::to_string(i));
          if (resp.is_ok() && resp.value().status == 200) ok.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(ok.load(), 32);
    // Cache flow works identically under this model.
    http::HttpClient client(server.address());
    auto hit = client.get("/cgi-bin/q?i=0");
    ASSERT_TRUE(hit.is_ok());
    EXPECT_EQ(hit.value().headers.get("X-Swala-Cache"), "hit-local");
  }
  server.stop();
  server.stop();  // idempotent under this model too
}

TEST(MiniServerTest, ServesRequests) {
  BaselineOptions opts;
  opts.docroot = make_docroot("mini");
  MiniServer server(opts, make_registry());
  ASSERT_TRUE(server.start().is_ok());

  http::HttpClient client(server.address());
  auto file = client.get("/index.html");
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(file.value().status, 200);
  auto dyn = client.get("/cgi-bin/x");
  ASSERT_TRUE(dyn.is_ok());
  EXPECT_EQ(dyn.value().status, 200);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(ForkingServerTest, ServesRequests) {
  BaselineOptions opts;
  opts.docroot = make_docroot("fork");
  ForkingServer server(opts, make_registry());
  ASSERT_TRUE(server.start().is_ok());

  for (int i = 0; i < 3; ++i) {
    http::HttpClient client(server.address());
    auto resp = client.get("/index.html");
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_EQ(resp.value().status, 200);
    EXPECT_EQ(resp.value().body, "<html>home</html>");
  }
  EXPECT_GE(server.connections_accepted(), 3u);
}

// ---- SwalaNode from config ----

TEST(SwalaNodeTest, StandaloneFromConfig) {
  auto cfg = Config::parse(
      "[server]\n"
      "port = 0\n"
      "threads = 4\n"
      "[cache]\n"
      "enabled = true\n"
      "max_entries = 50\n"
      "policy = gds\n"
      "[cacheability]\n"
      "rule = /cgi-bin/* cache ttl=60\n"
      "default = nocache\n");
  ASSERT_TRUE(cfg.is_ok());
  auto node = SwalaNode::from_config(cfg.value(), make_registry());
  ASSERT_TRUE(node.is_ok()) << node.status().to_string();
  ASSERT_TRUE(node.value()->start().is_ok());

  http::HttpClient client(node.value()->http().address());
  auto first = client.get("/cgi-bin/c?x=1");
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().headers.get("X-Swala-Cache"), "miss");
  auto second = client.get("/cgi-bin/c?x=1");
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().headers.get("X-Swala-Cache"), "hit-local");
  EXPECT_EQ(node.value()->cache()->store().policy(),
            core::PolicyKind::kGreedyDualSize);
}

TEST(SwalaNodeTest, CachingDisabled) {
  auto cfg = Config::parse("[server]\nport = 0\n[cache]\nenabled = false\n");
  ASSERT_TRUE(cfg.is_ok());
  auto node = SwalaNode::from_config(cfg.value(), make_registry());
  ASSERT_TRUE(node.is_ok());
  ASSERT_TRUE(node.value()->start().is_ok());
  EXPECT_EQ(node.value()->cache(), nullptr);

  http::HttpClient client(node.value()->http().address());
  auto a = client.get("/cgi-bin/n?x=1");
  auto b = client.get("/cgi-bin/n?x=1");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().headers.get("X-Swala-Cache"), "miss");
  EXPECT_EQ(b.value().headers.get("X-Swala-Cache"), "miss");
}

TEST(SwalaNodeTest, WarmRestartKeepsCacheAcrossRestarts) {
  const std::string dir = "/tmp/swala_node_warm";
  std::filesystem::remove_all(dir);
  const std::string conf =
      "[server]\nport = 0\nthreads = 2\n"
      "[cache]\nenabled = true\nmax_entries = 50\ndisk_dir = " + dir +
      "\nstate_file = " + dir + "/state.manifest\n"
      "[cacheability]\nrule = /cgi-bin/* cache\ndefault = nocache\n";
  auto cfg = Config::parse(conf);
  ASSERT_TRUE(cfg.is_ok());

  std::string warm_body;
  {
    auto node = SwalaNode::from_config(cfg.value(), make_registry());
    ASSERT_TRUE(node.is_ok()) << node.status().to_string();
    ASSERT_TRUE(node.value()->start().is_ok());
    http::HttpClient client(node.value()->http().address());
    auto miss = client.get("/cgi-bin/warm?q=1");
    ASSERT_TRUE(miss.is_ok());
    EXPECT_EQ(miss.value().headers.get("X-Swala-Cache"), "miss");
    warm_body = miss.value().body;
    node.value()->stop();  // saves the manifest
  }

  {
    auto node = SwalaNode::from_config(cfg.value(), make_registry());
    ASSERT_TRUE(node.is_ok());
    ASSERT_TRUE(node.value()->start().is_ok());  // restores
    http::HttpClient client(node.value()->http().address());
    auto hit = client.get("/cgi-bin/warm?q=1");
    ASSERT_TRUE(hit.is_ok());
    EXPECT_EQ(hit.value().headers.get("X-Swala-Cache"), "hit-local")
        << "entry must survive the restart";
    EXPECT_EQ(hit.value().body, warm_body);
  }
  std::filesystem::remove_all(dir);
}

TEST(SwalaNodeTest, StateFileWithoutDiskDirRejected) {
  auto cfg = Config::parse("[cache]\nstate_file = /tmp/x.manifest\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_FALSE(SwalaNode::from_config(cfg.value(), make_registry()).is_ok());
}

TEST(SwalaNodeTest, BadConfigRejected) {
  auto cfg = Config::parse("[cache]\npolicy = quantum\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_FALSE(SwalaNode::from_config(cfg.value(), make_registry()).is_ok());

  auto cfg2 = Config::parse("[cluster]\nmember = broken line\n");
  ASSERT_TRUE(cfg2.is_ok());
  EXPECT_FALSE(SwalaNode::from_config(cfg2.value(), make_registry()).is_ok());
}

TEST(SwalaNodeTest, BadMembershipConfigRejected) {
  const auto rejected = [](const std::string& cluster_section) {
    auto cfg = Config::parse("[cluster]\n" + cluster_section);
    EXPECT_TRUE(cfg.is_ok());
    return !SwalaNode::from_config(cfg.value(), make_registry()).is_ok();
  };
  // Duplicate member id: the second line would silently shadow the first.
  EXPECT_TRUE(rejected(
      "node_id = 0\n"
      "member = 0 127.0.0.1 9000 9001\n"
      "member = 0 127.0.0.1 9010 9011\n"));
  // Sparse id: indexes past the directory tables.
  EXPECT_TRUE(rejected(
      "node_id = 0\n"
      "member = 0 127.0.0.1 9000 9001\n"
      "member = 5 127.0.0.1 9010 9011\n"));
  // node_id absent from the list: binds no listeners, broadcasts anyway.
  EXPECT_TRUE(rejected(
      "node_id = 2\n"
      "member = 0 127.0.0.1 9000 9001\n"
      "member = 1 127.0.0.1 9010 9011\n"));
  // A dense, self-including list builds fine.
  auto cfg = Config::parse(
      "[server]\nport = 0\n[cluster]\n"
      "node_id = 1\n"
      "member = 0 127.0.0.1 0 0\n"
      "member = 1 127.0.0.1 0 0\n");
  ASSERT_TRUE(cfg.is_ok());
  auto node = SwalaNode::from_config(cfg.value(), make_registry());
  EXPECT_TRUE(node.is_ok()) << node.status().to_string();
}

TEST(SwalaNodeTest, BadStoreConfigRejected) {
  const auto rejected = [](const std::string& cache_section) {
    auto cfg = Config::parse("[cache]\nenabled = true\n" + cache_section);
    EXPECT_TRUE(cfg.is_ok());
    return !SwalaNode::from_config(cfg.value(), make_registry()).is_ok();
  };
  // Unknown backend name.
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = cyclone\n"));
  // volume without a disk directory to put the volume file in.
  EXPECT_TRUE(rejected("store = volume\nvolume_bytes = 1048576\n"));
  // volume without a preallocation size (the sizing decision is explicit).
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = volume\n"));
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = volume\n"
                       "volume_bytes = 0\n"));
  // Segment too small to hold even one record header.
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = volume\n"
                       "volume_bytes = 1048576\nsegment_bytes = 64\n"));
  // Volume smaller than two segments: compaction would have nowhere to go.
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = volume\n"
                       "volume_bytes = 262144\nsegment_bytes = 262144\n"));
  EXPECT_TRUE(rejected("disk_dir = /tmp/swala_store_cfg\nstore = volume\n"
                       "volume_bytes = 1048576\nwrite_buffer_bytes = 0\n"));

  // And the smallest valid volume config builds.
  auto cfg = Config::parse(
      "[server]\nport = 0\n"
      "[cache]\nenabled = true\ndisk_dir = /tmp/swala_store_cfg\n"
      "store = volume\nvolume_bytes = 1048576\nsegment_bytes = 524288\n");
  ASSERT_TRUE(cfg.is_ok());
  auto node = SwalaNode::from_config(cfg.value(), make_registry());
  EXPECT_TRUE(node.is_ok()) << node.status().to_string();
  std::filesystem::remove_all("/tmp/swala_store_cfg");
}

TEST(SwalaNodeTest, VolumeWarmRestartKeepsCacheAcrossRestarts) {
  const std::string dir = "/tmp/swala_node_warm_volume";
  std::filesystem::remove_all(dir);
  const std::string conf =
      "[server]\nport = 0\nthreads = 2\n"
      "[cache]\nenabled = true\nmax_entries = 50\ndisk_dir = " + dir +
      "\nstore = volume\nvolume_bytes = 2097152\nsegment_bytes = 262144\n"
      "state_file = " + dir + "/state.manifest\n"
      "[cacheability]\nrule = /cgi-bin/* cache\ndefault = nocache\n";
  auto cfg = Config::parse(conf);
  ASSERT_TRUE(cfg.is_ok());

  std::string warm_body;
  {
    auto node = SwalaNode::from_config(cfg.value(), make_registry());
    ASSERT_TRUE(node.is_ok()) << node.status().to_string();
    ASSERT_TRUE(node.value()->start().is_ok());
    http::HttpClient client(node.value()->http().address());
    auto miss = client.get("/cgi-bin/warm?q=volume");
    ASSERT_TRUE(miss.is_ok());
    EXPECT_EQ(miss.value().headers.get("X-Swala-Cache"), "miss");
    warm_body = miss.value().body;
    node.value()->stop();  // syncs the volume and saves the manifest
  }

  {
    auto node = SwalaNode::from_config(cfg.value(), make_registry());
    ASSERT_TRUE(node.is_ok());
    ASSERT_TRUE(node.value()->start().is_ok());  // recovery walk + restore
    http::HttpClient client(node.value()->http().address());
    auto hit = client.get("/cgi-bin/warm?q=volume");
    ASSERT_TRUE(hit.is_ok());
    EXPECT_EQ(hit.value().headers.get("X-Swala-Cache"), "hit-local")
        << "entry must survive the restart";
    EXPECT_EQ(hit.value().body, warm_body);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace swala::server
