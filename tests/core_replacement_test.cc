// Tests for the five replacement policies: per-policy ordering semantics
// plus parameterized invariants that must hold for every policy.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/replacement.h"

namespace swala::core {
namespace {

EntryMeta meta(const std::string& key, std::uint64_t size = 100,
               double cost = 1.0, std::uint64_t accesses = 0) {
  EntryMeta m;
  m.key = key;
  m.size_bytes = size;
  m.cost_seconds = cost;
  m.access_count = accesses;
  return m;
}

// ---- LRU ----

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  auto policy = make_policy(PolicyKind::kLru);
  policy->on_insert(meta("a"));
  policy->on_insert(meta("b"));
  policy->on_insert(meta("c"));
  EXPECT_EQ(policy->victim(), "a");
  policy->on_access(meta("a"));
  EXPECT_EQ(policy->victim(), "b");
}

TEST(LruPolicyTest, EraseRemovesFromOrder) {
  auto policy = make_policy(PolicyKind::kLru);
  policy->on_insert(meta("a"));
  policy->on_insert(meta("b"));
  policy->on_erase("a");
  EXPECT_EQ(policy->victim(), "b");
  EXPECT_EQ(policy->size(), 1u);
}

TEST(LruPolicyTest, ReinsertMovesToBack) {
  auto policy = make_policy(PolicyKind::kLru);
  policy->on_insert(meta("a"));
  policy->on_insert(meta("b"));
  policy->on_insert(meta("a"));  // refresh
  EXPECT_EQ(policy->victim(), "b");
  EXPECT_EQ(policy->size(), 2u);
}

// ---- FIFO ----

TEST(FifoPolicyTest, AccessDoesNotReorder) {
  auto policy = make_policy(PolicyKind::kFifo);
  policy->on_insert(meta("a"));
  policy->on_insert(meta("b"));
  policy->on_access(meta("a"));
  policy->on_access(meta("a"));
  EXPECT_EQ(policy->victim(), "a");
}

// ---- LFU ----

TEST(LfuPolicyTest, EvictsLeastFrequentlyUsed) {
  auto policy = make_policy(PolicyKind::kLfu);
  policy->on_insert(meta("a"));
  policy->on_insert(meta("b"));
  policy->on_access(meta("a", 100, 1.0, /*accesses=*/3));
  EXPECT_EQ(policy->victim(), "b");
  policy->on_access(meta("b", 100, 1.0, /*accesses=*/5));
  EXPECT_EQ(policy->victim(), "a");
}

// ---- SIZE ----

TEST(SizePolicyTest, EvictsLargestFirst) {
  auto policy = make_policy(PolicyKind::kSize);
  policy->on_insert(meta("small", 10));
  policy->on_insert(meta("huge", 100000));
  policy->on_insert(meta("medium", 1000));
  EXPECT_EQ(policy->victim(), "huge");
  policy->on_erase("huge");
  EXPECT_EQ(policy->victim(), "medium");
}

// ---- GreedyDual-Size ----

TEST(GdsPolicyTest, PrefersKeepingExpensiveEntries) {
  auto policy = make_policy(PolicyKind::kGreedyDualSize);
  policy->on_insert(meta("cheap", 100, /*cost=*/0.01));
  policy->on_insert(meta("pricey", 100, /*cost=*/10.0));
  EXPECT_EQ(policy->victim(), "cheap");
}

TEST(GdsPolicyTest, SizeMattersAtEqualCost) {
  auto policy = make_policy(PolicyKind::kGreedyDualSize);
  policy->on_insert(meta("big", 100000, 1.0));
  policy->on_insert(meta("small", 10, 1.0));
  EXPECT_EQ(policy->victim(), "big");  // lower value density
}

TEST(GdsPolicyTest, InflationAgesOldEntries) {
  auto policy = make_policy(PolicyKind::kGreedyDualSize);
  // Insert an expensive entry, evict cheap ones so inflation L rises, then
  // verify a newly inserted cheap entry can outrank the old expensive one
  // once L exceeds the old entry's H.
  policy->on_insert(meta("old-pricey", 100, 0.5));
  for (int i = 0; i < 50; ++i) {
    policy->on_insert(meta("filler" + std::to_string(i), 100, 5.0));
    // Evicting raises L to the victim's H.
    const auto victim = policy->victim();
    ASSERT_TRUE(victim.has_value());
    if (*victim == "old-pricey") {
      SUCCEED();  // aged out as expected
      return;
    }
    policy->on_erase(*victim);
  }
  // If never chosen, the policy failed to age the stale entry.
  FAIL() << "old entry never aged out";
}

// ---- cross-policy invariants ----

class PolicyInvariantTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyInvariantTest, NamesRoundtrip) {
  const PolicyKind kind = GetParam();
  auto parsed = policy_from_name(policy_name(kind));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), kind);
}

TEST_P(PolicyInvariantTest, VictimAlwaysAMember) {
  auto policy = make_policy(GetParam());
  Rng rng(42);
  std::set<std::string> members;
  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 49));
    if (op == 0) {
      policy->on_insert(meta(key, 1 + static_cast<std::uint64_t>(rng.uniform_int(1, 1000)),
                             rng.uniform(0.01, 10.0),
                             static_cast<std::uint64_t>(rng.uniform_int(0, 20))));
      members.insert(key);
    } else if (op == 1 && members.count(key)) {
      policy->on_access(meta(key, 100, 1.0,
                             static_cast<std::uint64_t>(rng.uniform_int(0, 20))));
    } else if (op == 2) {
      policy->on_erase(key);
      members.erase(key);
    }
    EXPECT_EQ(policy->size(), members.size());
    const auto victim = policy->victim();
    if (members.empty()) {
      EXPECT_FALSE(victim.has_value());
    } else {
      ASSERT_TRUE(victim.has_value());
      EXPECT_TRUE(members.count(*victim)) << "victim not a member: " << *victim;
    }
  }
}

TEST_P(PolicyInvariantTest, EvictionDrainsCompletely) {
  auto policy = make_policy(GetParam());
  for (int i = 0; i < 100; ++i) policy->on_insert(meta("k" + std::to_string(i)));
  std::set<std::string> evicted;
  while (policy->size() > 0) {
    const auto victim = policy->victim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(evicted.insert(*victim).second) << "victim repeated";
    policy->on_erase(*victim);
  }
  EXPECT_EQ(evicted.size(), 100u);
  EXPECT_FALSE(policy->victim().has_value());
}

TEST_P(PolicyInvariantTest, AccessOfUnknownKeyIsNoop) {
  auto policy = make_policy(GetParam());
  policy->on_access(meta("ghost"));
  EXPECT_EQ(policy->size(), 0u);
  policy->on_erase("ghost");
  EXPECT_EQ(policy->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariantTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kLfu,
                                           PolicyKind::kFifo, PolicyKind::kSize,
                                           PolicyKind::kGreedyDualSize),
                         [](const auto& param_info) {
                           return std::string(policy_name(param_info.param));
                         });

TEST(PolicyNameTest, UnknownNameRejected) {
  EXPECT_FALSE(policy_from_name("random").is_ok());
  EXPECT_TRUE(policy_from_name("greedy-dual-size").is_ok());
  EXPECT_TRUE(policy_from_name(" LRU ").is_ok());
}

}  // namespace
}  // namespace swala::core
