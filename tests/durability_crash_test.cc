// Kill-restart durability test with real processes: a swalad node with a
// disk-backed, checkpointed cache is SIGKILLed mid-burst (no signal handler
// can run — the hard-crash case), restarted over the same cache directory,
// and must come back serving every checkpointed entry byte-for-byte while
// its peer relearns the surviving entries over the cluster protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "http/client.h"
#include "net/socket.h"

#ifndef SWALA_SWALAD_PATH
#define SWALA_SWALAD_PATH "./swalad"
#endif

namespace swala {
namespace {

const std::string kRoot = "/tmp/swala_durability_crash_test";

std::uint16_t grab_free_port() {
  auto listener = net::TcpListener::listen({"127.0.0.1", 0});
  EXPECT_TRUE(listener.is_ok());
  return listener.value().local_port();
}

void write_file(const std::string& path, const std::string& content,
                bool executable = false) {
  std::ofstream out(path);
  out << content;
  out.close();
  if (executable) ::chmod(path.c_str(), 0755);
}

/// Extracts the integer after `"name": ` in the status JSON; -1 if absent.
long long json_value(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(body.c_str() + pos + needle.size());
}

/// Parameterized over the cache store backend: the whole SIGKILL battery
/// runs once against the one-file-per-entry store and once against the
/// log-structured volume, so both recovery paths face real hard crashes.
class CrashRestartTest : public ::testing::TestWithParam<std::string> {
 protected:
  bool volume_mode() const { return GetParam() == "volume"; }

  void SetUp() override {
    std::filesystem::remove_all(kRoot);
    std::filesystem::create_directories(kRoot + "/cgi-bin");
    write_file(kRoot + "/cgi-bin/lookup",
               "#!/bin/sh\n"
               "sleep 0.01\n"
               "printf 'Content-Type: text/plain\\n\\nresult for %s\\n' \"$QUERY_STRING\"\n",
               /*executable=*/true);
    // Slow program for the drain-under-load test: still executing when the
    // node is asked to shut down.
    write_file(kRoot + "/cgi-bin/slow",
               "#!/bin/sh\n"
               "sleep 0.6\n"
               "printf 'Content-Type: text/plain\\n\\nslow %s\\n' \"$QUERY_STRING\"\n",
               /*executable=*/true);
    for (auto& port : ports_) port = grab_free_port();
    for (int node = 0; node < 2; ++node) {
      const std::string cache_dir = kRoot + "/cache" + std::to_string(node);
      std::string conf;
      conf += "[server]\n";
      conf += "port = " + std::to_string(ports_[node]) + "\n";
      conf += "threads = 4\n";
      conf += "admin = true\n";
      conf += "cgi_dir = " + kRoot + "/cgi-bin\n";
      conf += "[cache]\nenabled = true\nmax_entries = 200\n";
      conf += "disk_dir = " + cache_dir + "\n";
      conf += "store = " + GetParam() + "\n";
      if (volume_mode()) {
        conf += "volume_bytes = 16777216\n";      // 64 slots of 256 KiB
        conf += "segment_bytes = 262144\n";
        conf += "write_buffer_bytes = 16384\n";
        conf += "flush_interval_ms = 20\n";
      }
      conf += "state_file = " + cache_dir + "/manifest.txt\n";
      conf += "purge_interval = 0.1\n";
      conf += "checkpoint_interval = 0.2\n";
      conf += "[cacheability]\nrule = /cgi-bin/* cache\ndefault = nocache\n";
      conf += "[cluster]\n";
      conf += "node_id = " + std::to_string(node) + "\n";
      conf += "member = 0 127.0.0.1 " + std::to_string(ports_[2]) + " " +
              std::to_string(ports_[4]) + "\n";
      conf += "member = 1 127.0.0.1 " + std::to_string(ports_[3]) + " " +
              std::to_string(ports_[5]) + "\n";
      write_file(conf_path(node), conf);
      spawn(node);
    }
    for (int node = 0; node < 2; ++node) {
      ASSERT_TRUE(wait_for_http(ports_[node])) << "node did not start";
    }
  }

  void TearDown() override {
    for (const pid_t pid : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
    std::filesystem::remove_all(kRoot);
  }

  std::string conf_path(int node) const {
    return kRoot + "/node" + std::to_string(node) + ".conf";
  }

  void spawn(int node) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const char* binary = SWALA_SWALAD_PATH;
      const std::string conf = conf_path(node);
      ::execl(binary, binary, conf.c_str(), nullptr);
      _exit(127);
    }
    pids_[node] = pid;
  }

  void kill_hard(int node) {
    ASSERT_GT(pids_[node], 0);
    ::kill(pids_[node], SIGKILL);
    int status = 0;
    ::waitpid(pids_[node], &status, 0);
    pids_[node] = -1;
  }

  static bool wait_for_http(std::uint16_t port) {
    for (int i = 0; i < 300; ++i) {
      auto conn = net::TcpStream::connect({"127.0.0.1", port}, 200);
      if (conn.is_ok()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Polls node `node`'s /swala-status until `predicate(body)` holds.
  template <typename Pred>
  bool wait_for_status(int node, Pred predicate, int attempts = 250) {
    http::HttpClient client({"127.0.0.1", ports_[node]});
    for (int i = 0; i < attempts; ++i) {
      auto resp = client.get("/swala-status");
      if (resp.is_ok() && predicate(resp.value().body)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::size_t count_cache_files(int node, const std::string& ext) {
    std::size_t n = 0;
    const std::string dir = kRoot + "/cache" + std::to_string(node);
    if (!std::filesystem::exists(dir)) return 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ext) ++n;
    }
    return n;
  }

  std::array<std::uint16_t, 6> ports_{};  ///< 2 http, 2 info, 2 data
  std::array<pid_t, 2> pids_{-1, -1};
};

TEST_P(CrashRestartTest, SigkillMidBurstThenRecover) {
  constexpr int kEntries = 20;
  http::HttpClient node0({"127.0.0.1", ports_[0]});

  // Populate: 20 distinct cacheable results on node 0.
  for (int i = 0; i < kEntries; ++i) {
    auto resp = node0.get("/cgi-bin/lookup?item=" + std::to_string(i));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    ASSERT_EQ(resp.value().status, 200);
  }

  // Wait for a checkpoint that happened strictly after the whole burst, so
  // the on-disk manifest is guaranteed to reference all 20 entries.
  long long burst_checkpoints = -1;
  ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
    burst_checkpoints = json_value(body, "checkpoints");
    return json_value(body, "cache_entries") >= kEntries &&
           burst_checkpoints >= 1;
  })) << "node 0 never checkpointed the burst";
  ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
    return json_value(body, "checkpoints") > burst_checkpoints;
  })) << "no post-burst checkpoint";

  // A second burst is in flight when the node is SIGKILLed: some of these
  // writes land, some tear. No handler runs; only durable state survives.
  std::thread burst([&] {
    http::HttpClient client({"127.0.0.1", ports_[0]});
    for (int i = 100; i < 140; ++i) {
      auto resp = client.get("/cgi-bin/lookup?item=" + std::to_string(i));
      if (!resp.is_ok()) break;  // the node just died mid-burst; expected
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  kill_hard(0);
  burst.join();

  // Restart over the same cache directory and wait for the warm restore.
  spawn(0);
  ASSERT_TRUE(wait_for_http(ports_[0])) << "node 0 did not restart";
  ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
    return json_value(body, "cache_entries") >= kEntries;
  })) << "restarted node did not restore the checkpointed entries";

  // The durability report is exposed and internally consistent, and the
  // scrub left no temp debris behind.
  http::HttpClient restarted({"127.0.0.1", ports_[0]});
  auto status = restarted.get("/swala-status");
  ASSERT_TRUE(status.is_ok());
  const std::string& body = status.value().body;
  EXPECT_NE(body.find("\"durability\""), std::string::npos);
  EXPECT_GE(json_value(body, "scrub_adopted"), kEntries);
  EXPECT_GE(json_value(body, "scrub_quarantined"), 0);
  EXPECT_GE(json_value(body, "scrub_temps_removed"), 0);
  EXPECT_EQ(json_value(body, "store_degraded"), 0);
  EXPECT_EQ(count_cache_files(0, ".tmp"), 0u);
  if (volume_mode()) {
    // One preallocated file holds everything; no per-entry files exist.
    EXPECT_NE(body.find("\"store_backend\": \"volume\""), std::string::npos);
    EXPECT_EQ(count_cache_files(0, ".cache"), 0u);
    EXPECT_TRUE(std::filesystem::exists(kRoot + "/cache0/volume.swala"));
  } else {
    // Every restored entry is exactly one verified file.
    EXPECT_NE(body.find("\"store_backend\": \"files\""), std::string::npos);
    EXPECT_EQ(static_cast<long long>(count_cache_files(0, ".cache")),
              json_value(body, "cache_entries"));
  }

  // Every checkpointed entry serves its exact bytes as a local hit on the
  // very first touch — restored from disk, CRC-verified, not re-executed.
  for (int i = 0; i < kEntries; ++i) {
    auto resp = restarted.get("/cgi-bin/lookup?item=" + std::to_string(i));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().headers.get("X-Swala-Cache"), "hit-local")
        << "item " << i << " was lost in the crash";
    EXPECT_NE(
        resp.value().body.find("result for item=" + std::to_string(i)),
        std::string::npos);
  }

  // The peer relearns the survivors over the cluster protocol (the restore
  // re-broadcast / resync) and serves them without executing anything.
  http::HttpClient node1({"127.0.0.1", ports_[1]});
  bool shared = false;
  std::string shared_state;
  for (int i = 0; i < 150 && !shared; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto resp = node1.get("/cgi-bin/lookup?item=7");
    ASSERT_TRUE(resp.is_ok());
    const auto state = resp.value().headers.get("X-Swala-Cache");
    if (state == "hit-remote" || state == "hit-local") {
      shared = true;
      EXPECT_NE(resp.value().body.find("result for item=7"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(shared) << "peer never served the restored entry from cache";
}

TEST_P(CrashRestartTest, SigtermDrainsInFlightRequestsBeforeExit) {
  // Three requests are mid-CGI (0.6 s each) when SIGTERM lands. The
  // graceful-drain path must let every one of them finish with a real
  // response, then save the manifest and exit cleanly — not cut them off.
  constexpr int kInFlight = 3;
  std::atomic<int> ok200{0};
  std::vector<std::thread> inflight;
  inflight.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    inflight.emplace_back([this, i, &ok200] {
      http::HttpClient client({"127.0.0.1", ports_[0]}, 10000);
      const auto resp = client.get("/cgi-bin/slow?req=" + std::to_string(i));
      if (resp.is_ok() && resp.value().status == 200 &&
          resp.value().body.find("slow req=" + std::to_string(i)) !=
              std::string::npos) {
        ok200.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_EQ(::kill(pids_[0], SIGTERM), 0);
  for (auto& t : inflight) t.join();
  EXPECT_EQ(ok200.load(), kInFlight) << "drain cut an in-flight request";

  // The process exited of its own accord with status 0 (drain -> manifest
  // save -> stop), not via our TearDown SIGKILL.
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pids_[0], &wstatus, 0), pids_[0]);
  EXPECT_TRUE(WIFEXITED(wstatus));
  if (WIFEXITED(wstatus)) EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  pids_[0] = -1;
}

TEST_P(CrashRestartTest, RepeatedKillRestartLoop) {
  constexpr int kEntries = 10;
  {
    http::HttpClient node0({"127.0.0.1", ports_[0]});
    for (int i = 0; i < kEntries; ++i) {
      auto resp = node0.get("/cgi-bin/lookup?loop=" + std::to_string(i));
      ASSERT_TRUE(resp.is_ok());
    }
  }
  ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
    return json_value(body, "cache_entries") >= kEntries &&
           json_value(body, "checkpoints") >= 1;
  }));
  // Give the post-populate checkpoint a moment to include every entry.
  const long long seen = [&] {
    http::HttpClient c({"127.0.0.1", ports_[0]});
    auto r = c.get("/swala-status");
    return r.is_ok() ? json_value(r.value().body, "checkpoints") : 0LL;
  }();
  ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
    return json_value(body, "checkpoints") > seen;
  }));

  for (int round = 0; round < 10; ++round) {
    kill_hard(0);
    spawn(0);
    ASSERT_TRUE(wait_for_http(ports_[0]))
        << "node did not come back in round " << round;
    ASSERT_TRUE(wait_for_status(0, [&](const std::string& body) {
      return json_value(body, "cache_entries") >= kEntries;
    })) << "entries lost in round " << round;
    // Spot-check one entry each round: correct bytes, served from cache.
    http::HttpClient client({"127.0.0.1", ports_[0]});
    auto resp =
        client.get("/cgi-bin/lookup?loop=" + std::to_string(round % kEntries));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().headers.get("X-Swala-Cache"), "hit-local");
    EXPECT_EQ(count_cache_files(0, ".tmp"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Stores, CrashRestartTest,
                         ::testing::Values("files", "volume"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace swala
