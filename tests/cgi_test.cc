// Tests for the CGI layer: document parsing, scripted handlers, registry
// dispatch, and real fork/exec execution of the bundled nullcgi program.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include "cgi/handler.h"
#include "cgi/process.h"
#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "core/manager.h"
#include "http/message.h"

#ifndef SWALA_NULLCGI_PATH
#define SWALA_NULLCGI_PATH "./nullcgi"
#endif

namespace swala::cgi {
namespace {

http::Request make_request(const std::string& target) {
  http::Request req;
  req.method = http::Method::kGet;
  req.target = target;
  EXPECT_TRUE(http::parse_uri(target, &req.uri));
  return req;
}

// ---- parse_cgi_document ----

TEST(CgiDocumentTest, HeaderBlockParsed) {
  const auto out = parse_cgi_document(
      "Content-Type: text/plain\nStatus: 404 Not Found\n\nbody text", 0);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.content_type, "text/plain");
  EXPECT_EQ(out.http_status, 404);
  EXPECT_EQ(out.body, "body text");
}

TEST(CgiDocumentTest, CrlfHeaders) {
  const auto out =
      parse_cgi_document("Content-Type: image/gif\r\n\r\nGIF89a...", 0);
  EXPECT_EQ(out.content_type, "image/gif");
  EXPECT_EQ(out.body, "GIF89a...");
}

TEST(CgiDocumentTest, NoHeadersTreatedAsBody) {
  const auto out = parse_cgi_document("just output\n\nwith blank line", 0);
  EXPECT_EQ(out.content_type, "text/html");
  EXPECT_EQ(out.body, "just output\n\nwith blank line");
}

TEST(CgiDocumentTest, NonZeroExitIsFailure) {
  const auto out = parse_cgi_document("Content-Type: text/html\n\nx", 3);
  EXPECT_FALSE(out.success);
}

TEST(CgiDocumentTest, EmptyOutput) {
  const auto out = parse_cgi_document("", 0);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(out.body.empty());
}

TEST(CgiDocumentTest, BogusStatusIgnored) {
  const auto out = parse_cgi_document("Status: banana\n\nx", 0);
  EXPECT_EQ(out.http_status, 200);
}

// ---- ScriptedCgi ----

TEST(ScriptedCgiTest, DeterministicOutputForSameTarget) {
  ScriptedOptions opts;
  opts.output_bytes = 256;
  ScriptedCgi cgi(opts);
  const auto req = make_request("/cgi-bin/x?q=1");
  auto a = cgi.run(req);
  auto b = cgi.run(req);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Bodies differ only in the execution counter comment line.
  EXPECT_EQ(a.value().body.substr(a.value().body.find('\n')),
            b.value().body.substr(b.value().body.find('\n')));
  EXPECT_EQ(cgi.execution_count(), 2u);
}

TEST(ScriptedCgiTest, DifferentTargetsDifferentBodies) {
  ScriptedCgi cgi(ScriptedOptions{.output_bytes = 128});
  auto a = cgi.run(make_request("/cgi-bin/x?q=1"));
  auto b = cgi.run(make_request("/cgi-bin/x?q=2"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(a.value().body, b.value().body);
}

TEST(ScriptedCgiTest, OutputSizeRespected) {
  ScriptedCgi cgi(ScriptedOptions{.output_bytes = 1000});
  auto out = cgi.run(make_request("/cgi-bin/big"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().body.size(), 1000u);
}

TEST(ScriptedCgiTest, SleepModeTakesTime) {
  ScriptedOptions opts;
  opts.mode = ComputeMode::kSleep;
  opts.service_seconds = 0.05;
  ScriptedCgi cgi(opts);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(cgi.run(make_request("/cgi-bin/slow")).is_ok());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed.count(), 0.045);
}

TEST(ScriptedCgiTest, BusyModeTakesTime) {
  ScriptedOptions opts;
  opts.mode = ComputeMode::kBusy;
  opts.service_seconds = 0.02;
  ScriptedCgi cgi(opts);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(cgi.run(make_request("/cgi-bin/busy")).is_ok());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed.count(), 0.015);
}

TEST(ScriptedCgiTest, CostFromQueryOverrides) {
  ScriptedOptions opts;
  opts.mode = ComputeMode::kSleep;
  opts.service_seconds = 10.0;  // would time the test out if used
  opts.cost_from_query = true;
  ScriptedCgi cgi(opts);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(cgi.run(make_request("/cgi-bin/q?cost=0.01")).is_ok());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), 1.0);
}

TEST(ScriptedCgiTest, FailureMode) {
  ScriptedCgi cgi(ScriptedOptions{.fail = true});
  auto out = cgi.run(make_request("/cgi-bin/broken"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_FALSE(out.value().success);
  EXPECT_EQ(out.value().http_status, 500);
}

TEST(DeterministicBodyTest, SeedAndLength) {
  EXPECT_EQ(deterministic_body(1, 64), deterministic_body(1, 64));
  EXPECT_NE(deterministic_body(1, 64), deterministic_body(2, 64));
  EXPECT_EQ(deterministic_body(9, 500).size(), 500u);
}

TEST(LambdaCgiTest, WrapsCallable) {
  LambdaCgi cgi([](const http::Request& req) -> swala::Result<CgiOutput> {
    CgiOutput out;
    out.success = true;
    out.body = "echo:" + req.uri.raw_query;
    return out;
  });
  auto out = cgi.run(make_request("/cgi-bin/echo?x=1"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().body, "echo:x=1");
}

TEST(LambdaCgiTest, PropagatesErrors) {
  LambdaCgi cgi([](const http::Request&) -> swala::Result<CgiOutput> {
    return swala::Status(swala::StatusCode::kInternal, "backend down");
  });
  auto out = cgi.run(make_request("/cgi-bin/x"));
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), swala::StatusCode::kInternal);
}

// ---- registry ----

TEST(RegistryTest, ExactAndPrefixMounts) {
  HandlerRegistry registry;
  auto a = std::make_shared<ScriptedCgi>(ScriptedOptions{});
  auto b = std::make_shared<ScriptedCgi>(ScriptedOptions{});
  registry.mount("/cgi-bin/", a);
  registry.mount("/cgi-bin/special", b);

  EXPECT_EQ(registry.find("/cgi-bin/anything"), a);
  EXPECT_EQ(registry.find("/cgi-bin/special"), b);  // longest match wins
  EXPECT_EQ(registry.find("/static/x.html"), nullptr);
  EXPECT_TRUE(registry.is_dynamic("/cgi-bin/q"));
  EXPECT_FALSE(registry.is_dynamic("/cgi-bin"));  // prefix requires the '/'
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, RemountReplaces) {
  HandlerRegistry registry;
  auto a = std::make_shared<ScriptedCgi>(ScriptedOptions{});
  auto b = std::make_shared<ScriptedCgi>(ScriptedOptions{});
  registry.mount("/x", a);
  registry.mount("/x", b);
  EXPECT_EQ(registry.find("/x"), b);
  EXPECT_EQ(registry.size(), 1u);
}

// ---- ProcessCgi (real fork/exec) ----

TEST(ProcessCgiTest, RunsNullCgi) {
  ProcessCgi cgi(SWALA_NULLCGI_PATH);
  auto out = cgi.run(make_request("/cgi-bin/null?x=1"));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_TRUE(out.value().success);
  EXPECT_EQ(out.value().content_type, "text/html");
  EXPECT_NE(out.value().body.find("null cgi"), std::string::npos);
}

TEST(ProcessCgiTest, MissingExecutableFails) {
  ProcessCgi cgi("/nonexistent/program");
  auto out = cgi.run(make_request("/cgi-bin/x"));
  // fork+exec succeeds at fork level; the child exits 127.
  ASSERT_TRUE(out.is_ok());
  EXPECT_FALSE(out.value().success);
}

TEST(ProcessCgiTest, EnvironmentReachesChild) {
  // /bin/sh -c style program is overkill; use a tiny shell script.
  const std::string script = "/tmp/swala_test_cgi_env.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nprintf 'Content-Type: text/plain\\n\\nQ=%s M=%s\\n' \"$QUERY_STRING\" \"$REQUEST_METHOD\"\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessCgi cgi(script);
  auto out = cgi.run(make_request("/cgi-bin/env?alpha=beta"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_TRUE(out.value().success);
  EXPECT_NE(out.value().body.find("Q=alpha=beta"), std::string::npos);
  EXPECT_NE(out.value().body.find("M=GET"), std::string::npos);
  unlink(script.c_str());
}

TEST(ProcessCgiTest, TimeoutKillsChild) {
  const std::string script = "/tmp/swala_test_cgi_sleep.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nsleep 30\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessOptions opts;
  opts.timeout_seconds = 0.2;
  ProcessCgi cgi(script, opts);
  const auto start = std::chrono::steady_clock::now();
  auto out = cgi.run(make_request("/cgi-bin/sleep"));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(out.is_ok());
  EXPECT_FALSE(out.value().success);
  EXPECT_EQ(out.value().http_status, 504);
  EXPECT_LT(elapsed.count(), 5.0);
  unlink(script.c_str());
}

// ---- failure paths: exec errors, runaway children, failed executions ----

TEST(ProcessCgiTest, ExecFailureReportsExit127) {
  ProcessOptions opts;
  auto result = run_cgi_process("/nonexistent/program",
                                make_request("/cgi-bin/x"), opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().exit_code, 127);  // shell convention: exec failed
  EXPECT_FALSE(result.value().timed_out);
  EXPECT_FALSE(result.value().oversized);
}

TEST(ProcessCgiTest, TimeoutFlagSetAndNotConfusedWithOversize) {
  const std::string script = "/tmp/swala_test_cgi_hang.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nsleep 30\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessOptions opts;
  opts.timeout_seconds = 0.2;
  auto result = run_cgi_process(script, make_request("/cgi-bin/hang"), opts);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().timed_out);
  EXPECT_FALSE(result.value().oversized);
  unlink(script.c_str());
}

TEST(ProcessCgiTest, OversizedOutputKilledAndFails) {
  // A child that writes forever: without the output cap + SIGKILL it would
  // run until the 30s default deadline. The cap must fire fast.
  const std::string script = "/tmp/swala_test_cgi_flood.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nwhile :; do printf 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx'; done\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessOptions opts;
  opts.max_output_bytes = 64 * 1024;
  const auto start = std::chrono::steady_clock::now();
  auto result = run_cgi_process(script, make_request("/cgi-bin/flood"), opts);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().oversized);
  EXPECT_FALSE(result.value().timed_out);  // distinct failure modes
  EXPECT_LT(elapsed.count(), 5.0);

  // And through the handler: a 500, not a 504, and never a success.
  ProcessCgi cgi(script, opts);
  auto out = cgi.run(make_request("/cgi-bin/flood"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_FALSE(out.value().success);
  EXPECT_EQ(out.value().http_status, 500);
  unlink(script.c_str());
}

TEST(ProcessCgiTest, NonzeroExitMeansFailureOutput) {
  const std::string script = "/tmp/swala_test_cgi_exit3.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nprintf 'Content-Type: text/plain\\n\\npartial'\nexit 3\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessCgi cgi(script);
  auto out = cgi.run(make_request("/cgi-bin/exit3"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_FALSE(out.value().success);
  unlink(script.c_str());
}

// Failed executions must never be cached: the manager's complete() drops
// unsuccessful outputs (Figure 2 only caches valid documents).
TEST(ProcessCgiTest, FailedExecutionIsNotCached) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  core::CacheManager manager(0, 1, std::move(mo), RealClock::instance());

  const auto req = make_request("/cgi-bin/broken");
  auto lookup = manager.lookup(req.method, req.uri);
  ASSERT_EQ(lookup.outcome, core::LookupOutcome::kMissMustExecute);

  ProcessCgi cgi("/nonexistent/program");
  auto out = cgi.run(req);
  ASSERT_TRUE(out.is_ok());
  ASSERT_FALSE(out.value().success);
  manager.complete(req.method, req.uri, lookup.rule, out.value(), 1.0);

  EXPECT_EQ(manager.store().entry_count(), 0u);
  EXPECT_EQ(manager.stats().inserts, 0u);
  EXPECT_EQ(manager.stats().failed_exec, 1u);
  // Next lookup is still a miss — nothing was poisoned into the cache.
  EXPECT_EQ(manager.lookup(req.method, req.uri).outcome,
            core::LookupOutcome::kMissMustExecute);
}

TEST(ProcessCgiTest, BodyPipedToStdin) {
  const std::string script = "/tmp/swala_test_cgi_stdin.sh";
  {
    FILE* f = fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("#!/bin/sh\nprintf 'Content-Type: text/plain\\n\\n'\ncat\n", f);
    fclose(f);
    chmod(script.c_str(), 0755);
  }
  ProcessCgi cgi(script);
  http::Request req = make_request("/cgi-bin/echo");
  req.method = http::Method::kPost;
  req.body = "posted payload";
  auto out = cgi.run(req);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().body, "posted payload");
  unlink(script.c_str());
}

}  // namespace
}  // namespace swala::cgi
