// Tests for the invalidation extensions (§4.2 future work): pattern-based
// application-driven invalidation (local, cluster-wide broadcast, peer
// application) and the source-file DependencyMonitor, including over a real
// loopback cluster.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "cluster/local_cluster.h"
#include "common/clock.h"
#include "core/manager.h"
#include "core/monitor.h"

namespace swala::core {
namespace {

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

ManagerOptions open_options(NodeId = 0) {
  ManagerOptions mo;
  mo.limits = {1000, 0};
  RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

void cache_target(CacheManager& manager, const std::string& target) {
  const auto uri = uri_of(target);
  auto lookup = manager.lookup(http::Method::kGet, uri);
  ASSERT_EQ(lookup.outcome, LookupOutcome::kMissMustExecute) << target;
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("data"),
                   1.0);
}

// ---- store-level erase_matching ----

TEST(StoreInvalidationTest, EraseMatchingGlob) {
  ManualClock clock(0);
  CacheStore store({100, 0}, PolicyKind::kLru,
                   std::make_unique<MemoryBackend>(), &clock, 0);
  std::vector<EntryMeta> evicted;
  for (const char* target : {"/cgi-bin/report?q=1", "/cgi-bin/report?q=2",
                             "/cgi-bin/other?q=1"}) {
    ASSERT_TRUE(store
                    .insert(CacheKey::make("GET", target), "d", 1.0, 0, "t",
                            200, &evicted)
                    .is_ok());
  }
  const auto removed = store.erase_matching("GET /cgi-bin/report*");
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_TRUE(store.contains("GET /cgi-bin/other?q=1"));
  EXPECT_TRUE(store.erase_matching("GET /nothing*").empty());
}

TEST(StoreInvalidationTest, KeysListsEverything) {
  ManualClock clock(0);
  CacheStore store({100, 0}, PolicyKind::kLru,
                   std::make_unique<MemoryBackend>(), &clock, 0);
  std::vector<EntryMeta> evicted;
  EXPECT_TRUE(store.keys().empty());
  ASSERT_TRUE(store
                  .insert(CacheKey::make("GET", "/cgi-bin/a"), "d", 1.0, 0,
                          "t", 200, &evicted)
                  .is_ok());
  EXPECT_EQ(store.keys(), std::vector<std::string>{"GET /cgi-bin/a"});
}

// ---- directory-level erase_matching ----

TEST(DirectoryInvalidationTest, RemovesAcrossAllTables) {
  ManualClock clock(0);
  CacheDirectory dir(0, 3, LockingMode::kPerTable);
  dir.set_clock(&clock);
  for (NodeId owner = 0; owner < 3; ++owner) {
    EntryMeta meta;
    meta.key = "GET /cgi-bin/x?owner=" + std::to_string(owner);
    meta.owner = owner;
    dir.apply_insert(meta);
  }
  EXPECT_EQ(dir.erase_matching("GET /cgi-bin/x*"), 3u);
  EXPECT_EQ(dir.size(), 0u);
}

// ---- manager-level invalidation ----

TEST(ManagerInvalidationTest, LocalInvalidateRemovesStoreAndDirectory) {
  ManualClock clock(0);
  CacheManager manager(0, 1, open_options(), &clock);
  cache_target(manager, "/cgi-bin/report?q=1");
  cache_target(manager, "/cgi-bin/report?q=2");
  cache_target(manager, "/cgi-bin/keep?q=1");

  EXPECT_EQ(manager.invalidate("GET /cgi-bin/report*"), 2u);
  EXPECT_EQ(manager.stats().invalidations, 2u);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri_of("/cgi-bin/report?q=1"))
                .outcome,
            LookupOutcome::kMissMustExecute);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri_of("/cgi-bin/keep?q=1"))
                .outcome,
            LookupOutcome::kHit);
}

TEST(ManagerInvalidationTest, PeerInvalidateDoesNotRebroadcast) {
  class CountingBus : public CooperationBus {
   public:
    void broadcast_insert(const EntryMeta&) override {}
    void broadcast_erase(NodeId, const std::string&, std::uint64_t) override {}
    Result<CachedResult> fetch_remote(NodeId, const std::string&) override {
      return Status(StatusCode::kNotFound, "n/a");
    }
    void broadcast_invalidate(const std::string&) override { ++invalidates; }
    int invalidates = 0;
  };
  ManualClock clock(0);
  CountingBus bus;
  CacheManager manager(0, 2, open_options(), &clock, &bus);
  cache_target(manager, "/cgi-bin/z?q=1");

  manager.on_peer_invalidate("GET /cgi-bin/z*");
  EXPECT_EQ(bus.invalidates, 0) << "peer application must not echo";
  manager.invalidate("GET /cgi-bin/z*");
  EXPECT_EQ(bus.invalidates, 1);
}

// ---- dependency monitor ----

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/swala_monitor_test_source.dat";
    write_file("version 1");
  }
  void TearDown() override { ::remove(path_.c_str()); }

  void write_file(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  // Note: change detection compares size as well as mtime, so same-second
  // rewrites with different content lengths register reliably.
  std::string path_;
};

TEST_F(MonitorTest, InvalidatesWhenFileChanges) {
  ManualClock clock(0);
  CacheManager manager(0, 1, open_options(), &clock);
  cache_target(manager, "/cgi-bin/report?q=1");
  cache_target(manager, "/cgi-bin/report?q=2");

  DependencyMonitor monitor(&manager);
  monitor.watch(path_, "GET /cgi-bin/report*");
  EXPECT_EQ(monitor.watch_count(), 1u);

  EXPECT_EQ(monitor.poll(), 0u) << "unchanged file must not invalidate";

  write_file("version 2 with different size");
  EXPECT_EQ(monitor.poll(), 2u);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri_of("/cgi-bin/report?q=1"))
                .outcome,
            LookupOutcome::kMissMustExecute);
  EXPECT_EQ(monitor.poll(), 0u) << "steady state after the change";
}

TEST_F(MonitorTest, FileDeletionAndCreationCount) {
  ManualClock clock(0);
  CacheManager manager(0, 1, open_options(), &clock);
  cache_target(manager, "/cgi-bin/r?q=1");
  DependencyMonitor monitor(&manager);
  monitor.watch(path_, "GET /cgi-bin/r*");

  ::remove(path_.c_str());
  EXPECT_EQ(monitor.poll(), 1u);

  cache_target(manager, "/cgi-bin/r?q=1");
  write_file("reborn");
  EXPECT_EQ(monitor.poll(), 1u);
}

TEST_F(MonitorTest, MissingFileBaselineIsValid) {
  ManualClock clock(0);
  CacheManager manager(0, 1, open_options(), &clock);
  DependencyMonitor monitor(&manager);
  monitor.watch("/tmp/swala_never_existed.dat", "GET /cgi-bin/*");
  EXPECT_EQ(monitor.poll(), 0u);
}

// ---- cluster-wide over real TCP ----

TEST(ClusterInvalidationTest, InvalidateReachesPeers) {
  cluster::LocalCluster cluster(3, open_options);
  cache_target(cluster.manager(0), "/cgi-bin/shared?v=1");

  // Wait until peers learned about it.
  for (int i = 0; i < 200; ++i) {
    if (cluster.manager(1).directory().lookup("GET /cgi-bin/shared?v=1") &&
        cluster.manager(2).directory().lookup("GET /cgi-bin/shared?v=1")) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(
      cluster.manager(2).directory().lookup("GET /cgi-bin/shared?v=1"));

  // Node 1 (not the owner!) issues the invalidation.
  cluster.manager(1).invalidate("GET /cgi-bin/shared*");

  bool gone = false;
  for (int i = 0; i < 200 && !gone; ++i) {
    gone = !cluster.manager(0).store().contains("GET /cgi-bin/shared?v=1") &&
           !cluster.manager(0).directory().lookup("GET /cgi-bin/shared?v=1") &&
           !cluster.manager(2).directory().lookup("GET /cgi-bin/shared?v=1");
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone) << "invalidation must reach every node's store+directory";
}

}  // namespace
}  // namespace swala::core
