// Unit tests for swala_common: status, strings, config, hash, rng, stats,
// queue, thread pool, clocks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/config.h"
#include "common/hash.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace swala {
namespace {

// ---- Status / Result ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kNotFound, "missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "not_found: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(StatusCode::kTimeout, "too slow");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

// ---- strings ----

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \r\n"), "a b");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitTrimmed) {
  EXPECT_EQ(split_trimmed(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(starts_with("/cgi-bin/x", "/cgi-bin/"));
  EXPECT_FALSE(starts_with("/cgi", "/cgi-bin/"));
  EXPECT_TRUE(ends_with("file.html", ".html"));
}

TEST(StringsTest, GlobBasics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("/cgi-bin/*", "/cgi-bin/query?x=1"));
  EXPECT_FALSE(glob_match("/cgi-bin/*", "/static/a.html"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*.gif", "tile7.gif"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
}

TEST(StringsTest, GlobStarCrossesSlashes) {
  // Cacheability patterns treat '*' as "any run", including '/'.
  EXPECT_TRUE(glob_match("/cgi-bin/*", "/cgi-bin/sub/dir/prog"));
}

TEST(StringsTest, ParseNumbers) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_u64("123", &u));
  EXPECT_EQ(u, 123u);
  EXPECT_FALSE(parse_u64("12x", &u));
  EXPECT_FALSE(parse_u64("", &u));
  EXPECT_FALSE(parse_u64("-5", &u));

  double d = 0;
  EXPECT_TRUE(parse_double("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(parse_double(" 2 ", &d));
  EXPECT_FALSE(parse_double("abc", &d));
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.0 MiB");
}

// ---- config ----

TEST(ConfigTest, ParsesSectionsAndValues) {
  auto cfg = Config::parse(
      "top = 1\n"
      "[server]\n"
      "port = 8080\n"
      "host=127.0.0.1\n"
      "# comment\n"
      "; also comment\n"
      "[cache]\n"
      "enabled = true\n"
      "ratio = 0.5\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("", "top"), 1);
  EXPECT_EQ(cfg.value().get_int("server", "port"), 8080);
  EXPECT_EQ(cfg.value().get_string("server", "host"), "127.0.0.1");
  EXPECT_TRUE(cfg.value().get_bool("cache", "enabled"));
  EXPECT_DOUBLE_EQ(cfg.value().get_double("cache", "ratio"), 0.5);
}

TEST(ConfigTest, FallbacksAndMissing) {
  auto cfg = Config::parse("[a]\nx = 1\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("a", "missing", 7), 7);
  EXPECT_EQ(cfg.value().get_string("nosection", "x", "dflt"), "dflt");
  EXPECT_FALSE(cfg.value().has("a", "missing"));
  EXPECT_TRUE(cfg.value().has("a", "x"));
}

TEST(ConfigTest, RepeatedKeys) {
  auto cfg = Config::parse("[r]\nrule = one\nrule = two\nrule = three\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_all("r", "rule"),
            (std::vector<std::string>{"one", "two", "three"}));
  // Scalar getter resolves to the last occurrence.
  EXPECT_EQ(cfg.value().get_string("r", "rule"), "three");
}

TEST(ConfigTest, InlineComments) {
  auto cfg = Config::parse(
      "[server]\n"
      "port = 8080  ; ephemeral would be 0\n"
      "policy = gds # greedy-dual-size\n"
      "rule = /cgi-bin/*#* cache\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("server", "port"), 8080);
  EXPECT_EQ(cfg.value().get_string("server", "policy"), "gds");
  // A marker glued to the value is part of it, not a comment.
  EXPECT_EQ(cfg.value().get_string("server", "rule"), "/cgi-bin/*#* cache");
}

TEST(ConfigTest, MalformedLines) {
  EXPECT_FALSE(Config::parse("[broken\n").is_ok());
  EXPECT_FALSE(Config::parse("no equals sign\n").is_ok());
  EXPECT_FALSE(Config::parse("= value\n").is_ok());
}

TEST(ConfigTest, BoolSpellings) {
  auto cfg = Config::parse("a=yes\nb=off\nc=1\nd=FALSE\ne=maybe\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(cfg.value().get_bool("", "a"));
  EXPECT_FALSE(cfg.value().get_bool("", "b", true));
  EXPECT_TRUE(cfg.value().get_bool("", "c"));
  EXPECT_FALSE(cfg.value().get_bool("", "d", true));
  EXPECT_TRUE(cfg.value().get_bool("", "e", true));  // unparsable -> fallback
}

TEST(ConfigTest, NegativeIntegers) {
  auto cfg = Config::parse("x = -42\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("", "x"), -42);
}

// ---- hash ----

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, ContinuationMatchesConcatenation) {
  const auto direct = fnv1a64("hello world");
  const auto split_hash = fnv1a64_continue(fnv1a64("hello "), "world");
  EXPECT_EQ(direct, split_hash);
}

TEST(HashTest, Mix64Avalanche) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);
}

// ---- rng / distributions ----

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, LognormalMean) {
  Rng rng(6);
  OnlineStats stats;
  // mean = exp(mu + sigma^2/2) = exp(0 + 0.125) ~ 1.133
  for (int i = 0; i < 50000; ++i) stats.add(rng.lognormal(0.0, 0.5));
  EXPECT_NEAR(stats.mean(), std::exp(0.125), 0.05);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.2, 10.0, 1000.0);
    EXPECT_GE(v, 10.0 * 0.999);
    EXPECT_LE(v, 1000.0 * 1.001);
  }
}

TEST(ZipfTest, RankOneMostPopular) {
  Rng rng(8);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(9);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.sample(rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(counts[r], draws / 10.0, draws * 0.01);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 0.8);
  double sum = 0.0;
  for (std::size_t r = 1; r <= 1000; ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RejectsEmptyPopulation) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

// ---- stats ----

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(OnlineStatsTest, MergeMatchesCombined) {
  Rng rng(11);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(LatencyHistogramTest, PercentilesApproximate) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.001);  // 1ms..1s uniform
  EXPECT_NEAR(h.percentile(50), 0.5, 0.05);
  EXPECT_NEAR(h.percentile(99), 0.99, 0.1);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-6);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.add(0.1);
  b.add(0.2);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 0.15, 1e-9);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

// ---- queue ----

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(10);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, ProducerConsumerStress) {
  BoundedQueue<int> q(16);
  constexpr int kItems = 2000;
  std::atomic<long> sum{0};
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.push(i);
    q.close();
  });
  std::thread consumer([&] {
    while (auto v = q.pop()) sum += *v;
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems + 1) / 2);
}

// ---- thread pool ----

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesDeliverResults) {
  ThreadPool pool(2);
  auto f = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

// ---- clock ----

TEST(ClockTest, RealClockMonotone) {
  RealClock* clock = RealClock::instance();
  const TimeNs a = clock->now();
  const TimeNs b = clock->now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(10);
  EXPECT_EQ(clock.now(), 10);
}

TEST(ClockTest, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000'000), 2.5);
  EXPECT_EQ(from_millis(2.0), 2'000'000);
}

}  // namespace
}  // namespace swala
