// Dynamic-membership tests over a real loopback LocalCluster: the staged
// two-phase join (a node outside the active set runs kJoin against every
// member and adopts the acked view), graceful decommission (drain + handoff
// to ring successors, peers deactivate without quarantine), query-sweep
// probe rotation, and rolling-restart parity across all three directory
// modes.
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/local_cluster.h"
#include "http/uri.h"

namespace swala::cluster {
namespace {

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.body = body;
  return out;
}

/// Polls until `pred` holds or ~3 s elapse (broadcasts are asynchronous).
bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 300; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Executes-and-caches `target` at `node` (must currently be a miss there).
void insert_at(LocalCluster& cluster, core::NodeId node,
               const std::string& target, const std::string& body) {
  const auto uri = uri_of(target);
  auto lookup = cluster.manager(node).lookup(http::Method::kGet, uri);
  ASSERT_EQ(lookup.outcome, core::LookupOutcome::kMissMustExecute) << target;
  cluster.manager(node).complete(http::Method::kGet, uri, lookup.rule,
                                 ok_output(body), 1.0);
}

/// Cluster factory: `staged_out` (if any) starts outside the active set;
/// everyone shares the same initial view.
LocalCluster make_cluster(std::size_t n, core::DirectoryMode mode,
                          std::vector<core::NodeId> initial_active = {}) {
  const auto manager_options = [mode, initial_active](core::NodeId) {
    core::ManagerOptions mo;
    mo.limits = {1000, 0};
    core::RuleDecision d;
    d.cacheable = true;
    mo.rules.add_rule("/cgi-bin/*", d);
    mo.directory_mode = mode;
    mo.initial_members = initial_active;
    return mo;
  };
  const auto group_options = [initial_active](core::NodeId) {
    GroupOptions go;
    go.purge_interval_seconds = 0.2;
    go.probe_interval_ms = 100;
    go.connect_timeout_ms = 500;
    go.fetch_timeout_ms = 500;
    go.query_timeout_ms = 300;
    go.initial_active = initial_active;
    return go;
  };
  return LocalCluster(n, manager_options, RealClock::instance(),
                      group_options);
}

TEST(MembershipTest, StagedJoinBecomesVisibleClusterWide) {
  // Node 2 starts outside the active set: members ignore it, and the entry
  // it caches stand-alone is invisible to the cluster. After join_cluster()
  // every node holds the same 3-member view and the pre-join entry is
  // remotely servable.
  LocalCluster cluster = make_cluster(3, core::DirectoryMode::kReplicated,
                                      {0, 1});
  EXPECT_FALSE(cluster.manager(0).is_member(2));
  EXPECT_FALSE(cluster.manager(2).is_member(2)) << "not admitted yet";

  insert_at(cluster, 0, "/cgi-bin/join/a", "from-0");
  insert_at(cluster, 2, "/cgi-bin/join/pre", "stand-alone");
  // Stand-alone means stand-alone: the members never learn of the entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(
      cluster.manager(0).directory().lookup("GET /cgi-bin/join/pre"));

  const auto st = cluster.group(2).join_cluster();
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  const std::vector<core::NodeId> want = {0, 1, 2};
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(0).active_members() == want &&
           cluster.manager(1).active_members() == want &&
           cluster.manager(2).active_members() == want;
  }));
  EXPECT_EQ(cluster.manager(2).membership_epoch(),
            cluster.manager(0).membership_epoch());
  EXPECT_GE(cluster.group(2).stats().joins_sent, 2u)
      << "phase 2: every active member gets its own kJoin";
  EXPECT_GE(cluster.group(0).stats().joins_served, 1u);

  // adopt_membership re-announced the stand-alone entry; the replicated
  // seeding push gave the joiner the members' records. Both directions
  // must now serve remotely.
  ASSERT_TRUE(eventually([&] {
    return cluster.manager(0)
        .directory()
        .lookup("GET /cgi-bin/join/pre")
        .has_value();
  }));
  auto hit = cluster.manager(0).lookup(http::Method::kGet,
                                       uri_of("/cgi-bin/join/pre"));
  ASSERT_EQ(hit.outcome, core::LookupOutcome::kHit);
  EXPECT_TRUE(hit.remote);
  EXPECT_EQ(hit.result.data, "stand-alone");

  ASSERT_TRUE(eventually([&] {
    return cluster.manager(2)
        .directory()
        .lookup("GET /cgi-bin/join/a")
        .has_value();
  }));
  auto seeded = cluster.manager(2).lookup(http::Method::kGet,
                                          uri_of("/cgi-bin/join/a"));
  ASSERT_EQ(seeded.outcome, core::LookupOutcome::kHit);
  EXPECT_EQ(seeded.result.data, "from-0");

  cluster.quiesce();
  const auto report = cluster.check_cluster_consistency();
  EXPECT_TRUE(report.consistent()) << report.to_string();
}

TEST(MembershipTest, GracefulDecommissionHandsOffWithoutLoss) {
  LocalCluster cluster = make_cluster(3, core::DirectoryMode::kReplicated);
  for (int i = 0; i < 6; ++i) {
    insert_at(cluster, 0, "/cgi-bin/leave/k" + std::to_string(i),
              "body-" + std::to_string(i));
  }
  const auto leaving = cluster.manager(0).store().keys();
  ASSERT_EQ(leaving.size(), 6u);

  // The swalad decommission sequence: stop inserts, ship state, announce.
  cluster.manager(0).begin_decommission();
  const auto handed = cluster.manager(0).handoff_state(0);
  EXPECT_EQ(handed.entries, 6u);
  cluster.group(0).announce_decommission();

  const std::vector<core::NodeId> want = {1, 2};
  EXPECT_TRUE(eventually([&] {
    return cluster.manager(1).active_members() == want &&
           cluster.manager(2).active_members() == want;
  }));
  // Graceful leave is not a death: no quarantine, no breaker trip.
  EXPECT_FALSE(cluster.manager(1).directory().quarantined(0));
  EXPECT_GE(cluster.group(1).stats().decommissions_observed, 1u);
  EXPECT_GE(cluster.group(0).stats().handoff_frames_sent, 6u);

  // Zero loss: every entry the leaver held is served by a survivor.
  for (const auto& key : leaving) {
    ASSERT_TRUE(eventually([&] {
      return cluster.manager(1).store().peek(key).has_value() ||
             cluster.manager(2).store().peek(key).has_value();
    })) << key << " vanished in the handoff";
  }
  const auto adopted = cluster.group(1).stats().handoffs_adopted +
                       cluster.group(2).stats().handoffs_adopted;
  EXPECT_EQ(adopted, 6u);

  // And the post-transition membership passes the oracle (the leaver's
  // self-retaining view is excluded, as the load balancer no longer
  // routes to it).
  cluster.quiesce();
  const auto report = core::check_cluster_consistency(
      {nullptr, &cluster.manager(1), &cluster.manager(2)});
  EXPECT_TRUE(report.consistent()) << report.to_string();
}

TEST(MembershipTest, QuerySweepRotatesAcrossHealthyPeers) {
  // Only node 2 holds the key, and the sweep stops at the first "found".
  // A fixed probe order would therefore either always probe node 1 first
  // (every sweep) or never probe it at all; the rotating start must land
  // somewhere in between across repeated sweeps.
  LocalCluster cluster = make_cluster(3, core::DirectoryMode::kQuery);
  const std::string target = "/cgi-bin/rot/x";
  insert_at(cluster, 2, target, "copy-2");

  const auto before_1 = cluster.group(1).stats().queries_served;
  const auto before_2 = cluster.group(2).stats().queries_served;
  for (int i = 0; i < 6; ++i) {
    auto found = cluster.group(0).query_peers("GET " + target, 500);
    ASSERT_TRUE(found.is_ok()) << found.status().to_string();
  }
  const auto probed_1 = cluster.group(1).stats().queries_served - before_1;
  const auto probed_2 = cluster.group(2).stats().queries_served - before_2;
  EXPECT_EQ(probed_2, 6u) << "the holder answers every sweep";
  EXPECT_GE(probed_1, 1u) << "fixed order: node 1 shadowed by node 2";
  EXPECT_LE(probed_1, 5u) << "fixed order: node 1 probed on every sweep";
}

TEST(MembershipTest, RollingRestartKeepsParityAcrossDirectoryModes) {
  // One node at a time stops and comes back (store intact — the restart is
  // a process bounce, not a disk loss). After the wave, every mode must
  // serve every entry and pass the cluster oracle.
  for (const auto mode :
       {core::DirectoryMode::kReplicated, core::DirectoryMode::kPartitioned,
        core::DirectoryMode::kQuery}) {
    SCOPED_TRACE(core::directory_mode_name(mode));
    LocalCluster cluster = make_cluster(3, mode);
    std::vector<std::string> keys;
    for (int n = 0; n < 3; ++n) {
      const std::string target =
          "/cgi-bin/roll/n" + std::to_string(n) + "-k";
      insert_at(cluster, static_cast<core::NodeId>(n), target,
                "body-" + std::to_string(n));
      keys.push_back("GET " + target);
    }
    cluster.quiesce();

    for (std::size_t n = 0; n < 3; ++n) {
      cluster.group(n).stop();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const auto st = cluster.group(n).start();
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      cluster.quiesce();
    }

    for (std::size_t i = 0; i < keys.size(); ++i) {
      // The inserting node still holds its entry; a peer can still reach
      // it through the mode's lookup path.
      EXPECT_TRUE(cluster.manager(i).store().peek(keys[i]).has_value());
      const auto reader = (i + 1) % 3;
      auto hit = cluster.manager(reader).lookup(
          http::Method::kGet,
          uri_of(keys[i].substr(4)));  // strip "GET "
      EXPECT_EQ(hit.outcome, core::LookupOutcome::kHit)
          << keys[i] << " unreachable from node " << reader;
    }
    cluster.quiesce();
    const auto report = cluster.check_cluster_consistency();
    EXPECT_TRUE(report.consistent()) << report.to_string();
    cluster.stop();
  }
}

}  // namespace
}  // namespace swala::cluster
