// Property tests: randomized operation sequences against CacheStore and
// CacheManager, checking the structural invariants that every execution
// must preserve regardless of policy, limits or interleaving.
#include <gtest/gtest.h>

#include <map>

#include "common/clock.h"
#include "common/random.h"
#include "core/manager.h"

namespace swala::core {
namespace {

struct StorePropertyParam {
  PolicyKind policy;
  std::uint64_t max_entries;
  std::uint64_t max_bytes;
};

class StorePropertyTest : public ::testing::TestWithParam<StorePropertyParam> {};

TEST_P(StorePropertyTest, InvariantsUnderRandomOps) {
  const auto param = GetParam();
  ManualClock clock(from_seconds(1.0));
  CacheStore store({param.max_entries, param.max_bytes}, param.policy,
                   std::make_unique<MemoryBackend>(), &clock, 0);
  Rng rng(static_cast<std::uint64_t>(param.max_entries) * 31 +
          param.max_bytes * 7 + static_cast<std::uint64_t>(param.policy));

  // Shadow model: key -> size, for byte accounting.
  std::map<std::string, std::uint64_t> shadow;
  std::vector<EntryMeta> evicted;

  for (int step = 0; step < 4000; ++step) {
    const std::string target =
        "/cgi-bin/p?k=" + std::to_string(rng.uniform_int(0, 99));
    const CacheKey key = CacheKey::make("GET", target);
    evicted.clear();

    switch (rng.uniform_int(0, 4)) {
      case 0:
      case 1: {  // insert
        const auto size =
            static_cast<std::size_t>(rng.uniform_int(1, 2000));
        const double ttl = rng.bernoulli(0.2) ? rng.uniform(0.1, 5.0) : 0.0;
        auto result = store.insert(key, std::string(size, 'd'),
                                   rng.uniform(0.01, 10.0), ttl, "t", 200,
                                   &evicted);
        if (result) {
          shadow[key.text] = size;
        } else {
          // Rejected: must be an oversized entry with a byte limit; the
          // rejection happens before any replacement, so an existing copy
          // under this key survives untouched.
          ASSERT_NE(param.max_bytes, 0u);
          ASSERT_GT(size, param.max_bytes);
        }
        for (const auto& victim : evicted) shadow.erase(victim.key);
        break;
      }
      case 2: {  // fetch
        const auto hit = store.fetch(key.text);
        // A fetch hit must be a key the shadow believes is present (the
        // reverse need not hold: TTL expiry hides entries).
        if (hit) {
          ASSERT_TRUE(shadow.count(key.text)) << key.text;
        }
        break;
      }
      case 3: {  // erase
        store.erase(key.text);
        shadow.erase(key.text);
        break;
      }
      case 4: {  // time passes; purge
        clock.advance(from_seconds(rng.uniform(0.0, 2.0)));
        for (const auto& meta : store.purge_expired()) {
          shadow.erase(meta.key);
        }
        break;
      }
    }

    // Invariants after every step.
    ASSERT_EQ(store.entry_count(), shadow.size());
    std::uint64_t expected_bytes = 0;
    for (const auto& [k, size] : shadow) expected_bytes += size;
    ASSERT_EQ(store.bytes_used(), expected_bytes);
    if (param.max_entries != 0) {
      ASSERT_LE(store.entry_count(), param.max_entries);
    }
    if (param.max_bytes != 0) {
      ASSERT_LE(store.bytes_used(), param.max_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorePropertyTest,
    ::testing::Values(StorePropertyParam{PolicyKind::kLru, 10, 0},
                      StorePropertyParam{PolicyKind::kLru, 0, 8000},
                      StorePropertyParam{PolicyKind::kLfu, 25, 0},
                      StorePropertyParam{PolicyKind::kFifo, 25, 20000},
                      StorePropertyParam{PolicyKind::kSize, 0, 5000},
                      StorePropertyParam{PolicyKind::kGreedyDualSize, 15, 0},
                      StorePropertyParam{PolicyKind::kGreedyDualSize, 0, 3000}),
    [](const auto& param_info) {
      return std::string(policy_name(param_info.param.policy)) + "_e" +
             std::to_string(param_info.param.max_entries) + "_b" +
             std::to_string(param_info.param.max_bytes);
    });

/// Manager-level property: after any interleaving of lookups, completions
/// and peer updates, every directory entry for self is backed by the store
/// and vice versa (modulo TTL visibility).
TEST(ManagerPropertyTest, DirectoryAndStoreStayConsistent) {
  ManualClock clock(from_seconds(1.0));
  ManagerOptions mo;
  mo.limits = {20, 0};
  RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  CacheManager manager(0, 3, std::move(mo), &clock);
  Rng rng(2024);

  for (int step = 0; step < 3000; ++step) {
    const std::string target =
        "/cgi-bin/c?k=" + std::to_string(rng.uniform_int(0, 59));
    http::Uri uri;
    ASSERT_TRUE(http::parse_uri(target, &uri));

    switch (rng.uniform_int(0, 2)) {
      case 0: {
        auto lookup = manager.lookup(http::Method::kGet, uri);
        if (lookup.outcome == LookupOutcome::kMissMustExecute) {
          cgi::CgiOutput out;
          out.success = true;
          out.body = std::string(64, 'x');
          manager.complete(http::Method::kGet, uri, lookup.rule, out, 1.0);
        }
        break;
      }
      case 1: {  // peer traffic
        EntryMeta meta;
        meta.key = "GET /cgi-bin/peer?k=" +
                   std::to_string(rng.uniform_int(0, 30));
        meta.owner = static_cast<NodeId>(rng.uniform_int(1, 2));
        meta.version = 1;
        if (rng.bernoulli(0.7)) {
          manager.on_peer_insert(meta);
        } else {
          manager.on_peer_erase(meta.owner, meta.key, 0);
        }
        break;
      }
      case 2: {
        manager.purge_expired();
        break;
      }
    }

    // Self-table consistency: everything the store holds, the directory
    // advertises, and vice versa.
    ASSERT_EQ(manager.directory().table_size(0), manager.store().entry_count());
    for (const auto& key : manager.store().keys()) {
      ASSERT_TRUE(manager.directory().lookup_at(0, key).has_value()) << key;
    }
  }
}

}  // namespace
}  // namespace swala::core
