// Chaos-harness tests: determinism of the sim substrate, the broken-oracle
// self-check (the oracle must be falsifiable), the acceptance scenario from
// the anti-entropy work (a 100% kInvalidate drop storm to one peer repairs
// within one anti-entropy round — and demonstrably does NOT with the repair
// layer disabled), duplicate-replay idempotency, and a short live-TCP run.
#include <gtest/gtest.h>

#include <string>

#include "chaos/chaos.h"

namespace swala::chaos {
namespace {

ChaosAction at(double t, ActionKind kind, core::NodeId node,
               std::string key_or_pattern = "") {
  ChaosAction a;
  a.at_seconds = t;
  a.kind = kind;
  a.node = node;
  a.key_or_pattern = std::move(key_or_pattern);
  return a;
}

/// The PR's acceptance scenario: three nodes each cache a key under one
/// namespace; node 0's sends of kInvalidate to node 2 are dropped 100%;
/// node 0 invalidates the namespace. Node 2 keeps serving its stale copy
/// until the anti-entropy layer pulls the missed invalidation.
ChaosSchedule drop_storm_schedule(double anti_entropy_interval) {
  ChaosSchedule s;
  s.nodes = 3;
  s.seed = 7;
  s.duration_seconds = 5.0;
  s.anti_entropy_interval_seconds = anti_entropy_interval;
  s.slack_seconds = 0.5;
  s.actions.push_back(at(0.1, ActionKind::kInsert, 0, "/cgi-bin/acc/a"));
  s.actions.push_back(at(0.15, ActionKind::kInsert, 1, "/cgi-bin/acc/b"));
  s.actions.push_back(at(0.2, ActionKind::kInsert, 2, "/cgi-bin/acc/c"));
  {
    ChaosAction storm = at(0.5, ActionKind::kAddFault, 0);
    storm.rule.peer = 2;
    storm.rule.type = cluster::MsgType::kInvalidate;
    storm.rule.kind = cluster::FaultKind::kDrop;
    storm.rule.probability = 1.0;
    s.actions.push_back(storm);
  }
  s.actions.push_back(at(1.0, ActionKind::kInvalidate, 0, "GET /cgi-bin/acc/*"));
  return s;
}

/// Membership churn scenario: node 3 starts outside the active set and
/// caches one entry stand-alone, joins mid-run (its pre-join entry must
/// become visible to the cluster), then node 0 decommissions gracefully —
/// handing its entries to ring successors — and an invalidation sweeps the
/// namespace under the post-churn membership.
ChaosSchedule churn_schedule() {
  ChaosSchedule s;
  s.nodes = 4;
  s.seed = 97;
  s.duration_seconds = 5.0;
  s.anti_entropy_interval_seconds = 1.0;
  s.slack_seconds = 0.5;
  s.initial_active = {0, 1, 2};
  s.actions.push_back(at(0.1, ActionKind::kInsert, 0, "/cgi-bin/churn/a"));
  s.actions.push_back(at(0.15, ActionKind::kInsert, 1, "/cgi-bin/churn/b"));
  s.actions.push_back(at(0.2, ActionKind::kInsert, 2, "/cgi-bin/churn/c"));
  s.actions.push_back(at(0.5, ActionKind::kInsert, 3, "/cgi-bin/churn/d"));
  s.actions.push_back(at(1.0, ActionKind::kJoinNode, 3));
  s.actions.push_back(at(1.5, ActionKind::kInsert, 3, "/cgi-bin/churn/e"));
  s.actions.push_back(at(2.0, ActionKind::kDecommissionNode, 0));
  s.actions.push_back(at(2.5, ActionKind::kInsert, 1, "/cgi-bin/churn/f"));
  s.actions.push_back(
      at(3.0, ActionKind::kInvalidate, 1, "GET /cgi-bin/churn/a*"));
  return s;
}

TEST(ChaosSimTest, SameSeedSameScheduleIsByteDeterministic) {
  const ChaosSchedule schedule = make_random_schedule(42, 3, 6.0);
  const ChaosVerdict first = run_sim_chaos(schedule);
  const ChaosVerdict second = run_sim_chaos(schedule);
  EXPECT_EQ(first.passed, second.passed);
  EXPECT_EQ(first.log_text(), second.log_text());
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.repair_frames, second.repair_frames);
  EXPECT_EQ(first.repair_bytes, second.repair_bytes);
  EXPECT_EQ(first.gaps_repaired, second.gaps_repaired);
  EXPECT_FALSE(first.log.empty());

  // A different seed must actually change the scenario (the generator is
  // seed-driven, not constant).
  const ChaosVerdict other = run_sim_chaos(make_random_schedule(43, 3, 6.0));
  EXPECT_NE(first.log_text(), other.log_text());
}

TEST(ChaosSimTest, BrokenOracleFailsOnAHealthyRun) {
  // No faults at all — yet "instant consistency" is an impossible claim
  // under nonzero propagation delay, so the oracle MUST fail. Guards
  // against a vacuous checker that never fires.
  ChaosSchedule s;
  s.nodes = 3;
  s.seed = 11;
  s.duration_seconds = 3.0;
  s.actions.push_back(at(0.1, ActionKind::kInsert, 0, "/cgi-bin/acc/a"));
  s.actions.push_back(at(0.15, ActionKind::kInsert, 1, "/cgi-bin/acc/b"));
  s.actions.push_back(at(1.0, ActionKind::kInvalidate, 0, "GET /cgi-bin/acc/*"));

  OracleOptions broken;
  broken.expect_instant_consistency = true;
  const ChaosVerdict verdict = run_sim_chaos(s, broken);
  EXPECT_FALSE(verdict.passed);
  EXPECT_FALSE(verdict.violations.empty());

  // The same run under the real bounded-staleness deadline passes.
  EXPECT_TRUE(run_sim_chaos(s).passed);
}

TEST(ChaosSimTest, DropStormRepairedWithinOneAntiEntropyRound) {
  const ChaosVerdict verdict = run_sim_chaos(drop_storm_schedule(1.0));
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_GE(verdict.gaps_repaired, 1u)
      << "node 2 must have pulled the dropped invalidation";
  EXPECT_GE(verdict.stale_serves_prevented, 1u);
  EXPECT_GE(verdict.anti_entropy_rounds, 1u);
  EXPECT_GT(verdict.repair_frames, 0u);
  EXPECT_GT(verdict.repair_bytes, 0u);

  // The stale window existed (node 2 held the dead entry for a while) but
  // closed before the deadline.
  bool saw_window = false;
  for (const auto& w : verdict.staleness_windows) {
    if (w.node == 2 && !w.violation) saw_window = true;
    EXPECT_FALSE(w.violation) << w.key;
  }
  EXPECT_TRUE(saw_window) << "expected a transient stale window on node 2";
}

TEST(ChaosSimTest, DisabledAntiEntropyReproducesStaleServeUntilTtl) {
  // Same scenario, repair layer off: node 2 serves the stale entry past
  // every deadline and the final directory state never reconverges.
  const ChaosVerdict verdict = run_sim_chaos(drop_storm_schedule(0.0));
  EXPECT_FALSE(verdict.passed);
  EXPECT_EQ(verdict.gaps_repaired, 0u);
  bool stale_on_node_2 = false;
  for (const auto& w : verdict.staleness_windows) {
    if (w.node == 2 && w.violation) stale_on_node_2 = true;
  }
  EXPECT_TRUE(stale_on_node_2) << verdict.log_text();
}

TEST(ChaosSimTest, DuplicateRepliesAreIdempotent) {
  // Every frame node 0 and node 1 send is delivered twice; version and
  // epoch guards must make the copies no-ops, so the run stays consistent.
  ChaosSchedule s;
  s.nodes = 3;
  s.seed = 21;
  s.duration_seconds = 4.0;
  for (int n = 0; n < 2; ++n) {
    ChaosAction dup = at(0.05, ActionKind::kAddFault,
                         static_cast<core::NodeId>(n));
    dup.rule.kind = cluster::FaultKind::kDuplicate;
    dup.rule.probability = 1.0;
    s.actions.push_back(dup);
  }
  s.actions.push_back(at(0.2, ActionKind::kInsert, 0, "/cgi-bin/dup/a"));
  s.actions.push_back(at(0.3, ActionKind::kInsert, 1, "/cgi-bin/dup/b"));
  s.actions.push_back(at(0.4, ActionKind::kInsert, 2, "/cgi-bin/dup/c"));
  s.actions.push_back(at(1.0, ActionKind::kInvalidate, 0, "GET /cgi-bin/dup/a*"));
  s.actions.push_back(at(1.5, ActionKind::kInvalidate, 1, "GET /cgi-bin/dup/b*"));

  const ChaosVerdict verdict = run_sim_chaos(s);
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
}

TEST(ChaosSimTest, CrashedNodeRejoinDropsEntriesInvalidatedWhilePartitioned) {
  // The rejoin-staleness scenario end to end on the sim substrate: node 2
  // crashes with a matching entry in its store, the invalidation fires
  // while it is away, and the rejoin epoch exchange must clean it up.
  ChaosSchedule s;
  s.nodes = 3;
  s.seed = 31;
  s.duration_seconds = 5.0;
  s.actions.push_back(at(0.1, ActionKind::kInsert, 0, "/cgi-bin/rj/a"));
  s.actions.push_back(at(0.2, ActionKind::kInsert, 2, "/cgi-bin/rj/c"));
  s.actions.push_back(at(0.5, ActionKind::kCrash, 2));
  s.actions.push_back(at(1.0, ActionKind::kInvalidate, 0, "GET /cgi-bin/rj/*"));
  s.actions.push_back(at(2.5, ActionKind::kRestart, 2));

  const ChaosVerdict verdict = run_sim_chaos(s);
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_GE(verdict.gaps_repaired, 1u);
  EXPECT_GE(verdict.stale_serves_prevented, 1u);
}

TEST(ChaosSimTest, MembershipChurnJoinThenDecommissionStaysConsistent) {
  const ChaosVerdict verdict = run_sim_chaos(churn_schedule());
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_EQ(verdict.membership_transitions, 2u);
  EXPECT_GE(verdict.handoff_frames, 1u)
      << "the decommission must hand entries to successors";
  EXPECT_GE(verdict.handoffs_adopted, 1u);
  EXPECT_GT(verdict.handoff_bytes, 0u);

  // Churn does not break determinism: same schedule, same byte-for-byte log.
  const ChaosVerdict second = run_sim_chaos(churn_schedule());
  EXPECT_EQ(verdict.log_text(), second.log_text());
  EXPECT_EQ(verdict.handoff_frames, second.handoff_frames);
}

TEST(ChaosSimTest, ChurnUnderDuplicateStormAdoptsEachEntryOnce) {
  // Every frame node 0 sends is delivered twice — including its handoff
  // frames at decommission. The already-cached guard in adopt_entry must
  // make the copies no-ops, so the run stays consistent and the adopted
  // count never exceeds the distinct entries shipped.
  ChaosSchedule s = churn_schedule();
  {
    ChaosAction dup = at(0.05, ActionKind::kAddFault, 0);
    dup.rule.kind = cluster::FaultKind::kDuplicate;
    dup.rule.probability = 1.0;
    s.actions.insert(s.actions.begin(), dup);
  }
  const ChaosVerdict verdict = run_sim_chaos(s);
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_EQ(verdict.membership_transitions, 2u);
  EXPECT_LE(verdict.handoffs_adopted, verdict.handoff_frames);
}

TEST(ChaosLiveTest, ScriptedRunOverRealTcpPasses) {
  // Short wall-clock smoke over loopback TCP: inserts, a kInvalidate drop
  // storm against one peer, an invalidation, repair via the real kDigest/
  // kInvSync exchange. Slack is generous — real threads, real timers.
  ChaosSchedule s = drop_storm_schedule(0.4);
  s.duration_seconds = 3.0;
  s.slack_seconds = 2.0;
  const ChaosVerdict verdict = run_live_chaos(s);
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_GE(verdict.gaps_repaired, 1u) << verdict.log_text();
  EXPECT_GE(verdict.anti_entropy_rounds, 1u);
}

TEST(ChaosLiveTest, MembershipChurnOverRealTcpPasses) {
  // The same churn story over loopback TCP: the staged joiner runs the real
  // two-phase kJoin exchange, the decommission ships real kInsert handoff
  // frames and broadcasts kDecommission, and the final oracle runs over the
  // post-churn membership.
  ChaosSchedule s = churn_schedule();
  s.duration_seconds = 4.0;
  s.anti_entropy_interval_seconds = 0.5;
  s.slack_seconds = 2.0;
  const ChaosVerdict verdict = run_live_chaos(s);
  EXPECT_TRUE(verdict.passed) << verdict.log_text();
  EXPECT_EQ(verdict.membership_transitions, 2u);
  EXPECT_GE(verdict.handoff_frames, 1u) << verdict.log_text();
  EXPECT_GE(verdict.handoffs_adopted, 1u);
}

}  // namespace
}  // namespace swala::chaos
