// swalad — the deployable Swala daemon.
//
// Reads an INI configuration (see examples/swala.conf), mounts every
// executable found in the configured cgi-bin directory as a fork/exec CGI
// program, and serves until SIGINT/SIGTERM. Multi-node groups are declared
// in the [cluster] section; run one swalad per node.
//
//   ./swalad examples/swala.conf
//   ./swalad examples/swala.conf --selftest   # start, self-probe, exit
//
// Signals are handled via a self-pipe so shutdown is clean (daemons joined,
// cache files removed).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cgi/process.h"
#include "cgi/registry.h"
#include "http/client.h"
#include "server/node.h"

using namespace swala;

namespace {

int g_signal_pipe[2] = {-1, -1};

// One byte per signal, distinct per intent: 'D' asks for a graceful
// decommission (hand cached state to the cluster before leaving), anything
// else is a plain drain-and-exit.
void on_signal(int signo) {
  const char byte = signo == SIGUSR2 ? 'D' : 'T';
  ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
  (void)rc;
}

/// Mounts every executable regular file in `dir` at `/cgi-bin/<name>`.
std::size_t mount_cgi_dir(cgi::HandlerRegistry& registry,
                          const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return 0;
  std::size_t mounted = 0;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode) ||
        (st.st_mode & S_IXUSR) == 0) {
      continue;
    }
    registry.mount("/cgi-bin/" + name, std::make_shared<cgi::ProcessCgi>(path));
    std::printf("  mounted /cgi-bin/%s -> %s\n", name.c_str(), path.c_str());
    ++mounted;
  }
  ::closedir(handle);
  return mounted;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config.ini> [--selftest]\n", argv[0]);
    return 2;
  }
  const bool selftest = argc > 2 && std::strcmp(argv[2], "--selftest") == 0;

  auto config = Config::load(argv[1]);
  if (!config) {
    std::fprintf(stderr, "config error: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }

  auto registry = std::make_shared<cgi::HandlerRegistry>();
  const std::string cgi_dir =
      config.value().get_string("server", "cgi_dir", "");
  if (!cgi_dir.empty()) {
    std::printf("scanning CGI directory %s:\n", cgi_dir.c_str());
    mount_cgi_dir(*registry, cgi_dir);
  }

  auto node = server::SwalaNode::from_config(config.value(), registry);
  if (!node) {
    std::fprintf(stderr, "configuration rejected: %s\n",
                 node.status().to_string().c_str());
    return 1;
  }
  if (auto st = node.value()->start(); !st.is_ok()) {
    std::fprintf(stderr, "startup failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("swalad serving on 127.0.0.1:%u (cache %s)\n",
              node.value()->http().port(),
              node.value()->cache() != nullptr ? "enabled" : "disabled");

  if (selftest) {
    http::HttpClient client(node.value()->http().address());
    auto resp = client.get("/swala-status");
    const bool ok = resp.is_ok() && (resp.value().status == 200 ||
                                     resp.value().status == 404);
    std::printf("selftest: %s\n", ok ? "OK" : "FAILED");
    node.value()->stop();
    return ok ? 0 : 1;
  }

  if (::pipe(g_signal_pipe) != 0) return 1;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR2, on_signal);  // graceful decommission, then exit
  char byte = 'T';
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  if (byte == 'D') {
    // Decommission before draining: in-flight requests may still serve
    // cache hits, but every cached entry is already on its way to a
    // successor and peers stop routing to this node.
    std::printf("\ndecommissioning...\n");
    const auto handed = node.value()->decommission();
    std::printf("handed off %zu directory records, %zu entries\n",
                handed.records, handed.entries);
  }
  std::printf("draining...\n");
  // Graceful drain: stop accepting, finish in-flight requests (bounded by
  // server.drain_timeout_ms), then stop() saves the manifest and joins.
  if (!node.value()->drain()) {
    std::printf("drain timed out; closing remaining connections\n");
  }
  std::printf("shutting down...\n");
  node.value()->stop();
  return 0;
}
