// Policy explorer: compares Swala's five replacement policies on the same
// ADL-like trace at several cache sizes, using the deterministic cluster
// simulator. This is the §3 trade-off ("the threshold needs to be selected
// carefully ... more advanced replacement methods can alleviate some of the
// problem") made concrete.
#include <cstdio>

#include "common/stats.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

int main() {
  workload::AdlOptions options;
  options.total_requests = 20000;
  const auto trace = workload::synthesize_adl_trace(options);

  // Count cacheable (CGI) requests and the hit upper bound for context.
  const auto upper = workload::hit_upper_bound(trace);
  std::size_t cgi_count = 0;
  for (const auto& r : trace) cgi_count += r.is_cgi ? 1 : 0;
  std::printf("trace: %zu requests (%zu CGI), hit upper bound %zu\n\n",
              trace.size(), cgi_count, upper);

  const core::PolicyKind kPolicies[] = {
      core::PolicyKind::kLru, core::PolicyKind::kLfu, core::PolicyKind::kFifo,
      core::PolicyKind::kSize, core::PolicyKind::kGreedyDualSize};

  for (const std::size_t cache_entries : {25u, 100u, 400u}) {
    std::printf("cache size: %zu entries per node (single node)\n",
                cache_entries);
    TablePrinter table({"policy", "hits", "% of bound", "mean resp (s)",
                        "time saved (s)"});
    for (const auto policy : kPolicies) {
      sim::SimConfig config;
      config.nodes = 1;
      config.client_streams = 4;
      config.limits = {cache_entries, 0};
      config.policy = policy;
      const auto report = sim::run_cluster_sim(trace, config);
      // Saved time = cost of every hit (the execution it avoided).
      sim::SimConfig nocache = config;
      nocache.caching = false;
      const auto base = sim::run_cluster_sim(trace, nocache);
      table.add_row(
          {core::policy_name(policy), std::to_string(report.cache.hits()),
           fmt_double(100.0 * static_cast<double>(report.cache.hits()) /
                          static_cast<double>(upper),
                      1),
           fmt_double(report.mean_response(), 3),
           fmt_double(base.sim_seconds - report.sim_seconds, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "GDS (GreedyDual-Size with cost = execution time) weighs both the\n"
      "time an entry saves and the space it takes; at small cache sizes it\n"
      "protects the expensive spatial queries that LRU/FIFO evict.\n");
  return 0;
}
