// Quickstart: bring up a single Swala node with a cache, mount two CGI
// programs (one in-process, one real fork/exec), and watch requests go from
// miss to hit.
//
//   $ ./quickstart [path-to-nullcgi]
//
// This is the smallest end-to-end use of the public API:
//   HandlerRegistry -> CacheManager -> SwalaServer -> HttpClient.
#include <cstdio>

#include "cgi/process.h"
#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "core/manager.h"
#include "http/client.h"
#include "server/swala_server.h"

using namespace swala;

int main(int argc, char** argv) {
  // 1. CGI programs. A scripted "report generator" that takes ~50 ms, and
  //    (optionally) the real nullcgi executable via fork/exec.
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions report_opts;
  report_opts.mode = cgi::ComputeMode::kSleep;
  report_opts.service_seconds = 0.05;
  report_opts.output_bytes = 512;
  registry->mount("/cgi-bin/report",
                  std::make_shared<cgi::ScriptedCgi>(report_opts));
  if (argc > 1) {
    registry->mount("/cgi-bin/null", std::make_shared<cgi::ProcessCgi>(argv[1]));
  }

  // 2. Cache: LRU, 1000 entries, cache everything under /cgi-bin/ that runs
  //    for at least 10 ms, results valid for an hour.
  core::ManagerOptions cache_options;
  cache_options.limits = {1000, 0};
  cache_options.policy = core::PolicyKind::kLru;
  core::RuleDecision rule;
  rule.cacheable = true;
  rule.ttl_seconds = 3600;
  rule.min_exec_seconds = 0.010;
  cache_options.rules.add_rule("/cgi-bin/*", rule);
  core::CacheManager cache(0, 1, std::move(cache_options),
                           RealClock::instance());

  // 3. HTTP server: 8 request threads taking turns on the accept socket.
  server::SwalaServerOptions server_options;
  server_options.request_threads = 8;
  server::SwalaServer server(server_options, registry, &cache);
  if (auto st = server.start(); !st.is_ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  std::printf("Swala listening on 127.0.0.1:%u\n", server.port());

  // 4. Drive it.
  http::HttpClient client(server.address());
  const RealClock& clock = *RealClock::instance();
  for (int round = 1; round <= 3; ++round) {
    const TimeNs start = clock.now();
    auto resp = client.get("/cgi-bin/report?quarter=Q3");
    if (!resp) {
      std::fprintf(stderr, "request failed: %s\n",
                   resp.status().to_string().c_str());
      return 1;
    }
    const auto cache_state = resp.value().headers.get("X-Swala-Cache");
    std::printf("round %d: status=%d cache=%s elapsed=%.1f ms\n", round,
                resp.value().status,
                cache_state ? std::string(*cache_state).c_str() : "?",
                to_seconds(clock.now() - start) * 1e3);
  }

  if (argc > 1) {
    auto null_resp = client.get("/cgi-bin/null");
    if (null_resp) {
      std::printf("fork/exec nullcgi: status=%d bytes=%zu\n",
                  null_resp.value().status, null_resp.value().body.size());
    }
  }

  const auto stats = cache.stats();
  std::printf("cache stats: lookups=%llu hits=%llu misses=%llu inserts=%llu\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.hits()),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.inserts));
  server.stop();
  return 0;
}
