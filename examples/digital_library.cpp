// Digital-library scenario: the workload that motivated Swala (§1, §3).
//
// Synthesizes an Alexandria-Digital-Library-like access log, prints the
// paper's Table-1 analysis for it, then replays a slice of the trace against
// a real Swala server twice — caching off, then caching on — and reports the
// response-time improvement the cache delivers.
#include <cstdio>
#include <unordered_map>

#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "common/stats.h"
#include "core/manager.h"
#include "http/client.h"
#include "server/swala_server.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

namespace {

/// CGI handler whose service time comes from the trace: the request carries
/// its cost in the "cost" query parameter (scaled down for demo runtime).
std::shared_ptr<cgi::HandlerRegistry> make_registry() {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions options;
  options.mode = cgi::ComputeMode::kSleep;
  options.cost_from_query = true;
  options.output_bytes = 1024;
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(options));
  return registry;
}

double replay(const workload::Trace& trace, bool caching, double scale) {
  core::ManagerOptions cache_options;
  cache_options.limits = {500, 0};
  core::RuleDecision rule;
  rule.cacheable = true;
  cache_options.rules.add_rule("/cgi-bin/*", rule);
  core::CacheManager cache(0, 1, std::move(cache_options),
                           RealClock::instance());

  server::SwalaServerOptions options;
  options.request_threads = 8;
  server::SwalaServer server(options, make_registry(),
                             caching ? &cache : nullptr);
  if (!server.start().is_ok()) return -1;

  http::HttpClient client(server.address());
  const RealClock& clock = *RealClock::instance();
  OnlineStats stats;
  for (const auto& record : trace) {
    if (!record.is_cgi) continue;
    // Re-encode the trace target with the scaled-down cost attached.
    const std::string target =
        record.target + "&cost=" + fmt_double(record.service_seconds * scale, 5);
    const TimeNs start = clock.now();
    auto resp = client.get(target);
    if (resp && resp.value().status == 200) {
      stats.add(to_seconds(clock.now() - start));
    }
  }
  server.stop();
  return stats.mean();
}

}  // namespace

int main() {
  std::printf("Synthesizing an ADL-like access log (this is the workload\n"
              "whose real counterpart motivated Swala)...\n\n");
  workload::AdlOptions options;
  const auto trace = workload::synthesize_adl_trace(options);
  const auto summary = workload::summarize(trace);
  std::printf("  %zu requests, %.1f%% CGI, mean file fetch %.3f s, mean CGI "
              "%.2f s,\n  total service time %.0f s (CGI share %.1f%%)\n\n",
              summary.total_requests,
              100.0 * summary.cgi_requests / summary.total_requests,
              summary.mean_file_service, summary.mean_cgi_service,
              summary.total_service_seconds,
              100.0 * summary.cgi_service_seconds /
                  summary.total_service_seconds);

  std::printf("Table-1 style analysis (potential saving by caching CGI):\n");
  TablePrinter table({"threshold (s)", "# long", "repeats", "# uniq",
                      "time saved (s)", "saved %"});
  for (const auto& row :
       workload::analyze_thresholds(trace, {0.5, 1.0, 2.0, 4.0})) {
    table.add_row({fmt_double(row.threshold_seconds, 1),
                   std::to_string(row.long_requests),
                   std::to_string(row.total_repeats),
                   std::to_string(row.unique_repeated),
                   fmt_double(row.time_saved_seconds, 0),
                   fmt_double(row.saved_percent, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Replaying 600 CGI requests of the trace against a real Swala\n"
              "server (service times scaled down 1000x for demo runtime)...\n");
  workload::Trace slice(trace.begin(), trace.begin() + 2000);
  workload::Trace cgi_only;
  for (const auto& r : slice) {
    if (r.is_cgi) cgi_only.push_back(r);
    if (cgi_only.size() == 600) break;
  }
  const double scale = 1e-3;
  const double mean_nocache = replay(cgi_only, false, scale);
  const double mean_cache = replay(cgi_only, true, scale);
  std::printf("  mean response, caching off: %.2f ms\n", mean_nocache * 1e3);
  std::printf("  mean response, caching on : %.2f ms\n", mean_cache * 1e3);
  std::printf("  improvement: %.1f%%\n",
              100.0 * (mean_nocache - mean_cache) / mean_nocache);
  return 0;
}
