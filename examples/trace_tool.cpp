// trace_tool — workload utility CLI.
//
//   trace_tool gen <out.trace> [requests]        synthesize an ADL-like trace
//   trace_tool summary <file>                    trace statistics
//   trace_tool analyze <file> [t1 t2 ...]        the paper's Table-1 analysis
//   trace_tool sim <file> <nodes> [standalone|nocache]
//                                                replay through the simulator
//
// <file> may be a trace written by `gen` or a Swala access log (the format
// is auto-detected), so the full §3 study runs on live server logs.
#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "server/access_log.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"
#include "workload/clf.h"
#include "workload/trace.h"

using namespace swala;

namespace {

/// Loads any supported format: Swala access logs (lines start with "ts="),
/// the native trace format, or NCSA Common Log Format.
Result<workload::Trace> load_any(const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "r");
  if (probe == nullptr) {
    return Status(StatusCode::kNotFound, "cannot open " + path);
  }
  char head[4] = {0};
  const std::size_t got = std::fread(head, 1, 3, probe);
  std::fclose(probe);
  if (got >= 3 && std::strncmp(head, "ts=", 3) == 0) {
    return server::load_access_log_trace(path);
  }
  auto native = workload::load_trace(path);
  if (native) return native;
  auto clf = workload::load_clf_trace(path);
  if (clf && !clf.value().empty()) {
    std::fprintf(stderr,
                 "(parsed as Common Log Format; service times estimated)\n");
    return clf;
  }
  return native.status();
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool gen <out.trace> [requests]\n");
    return 2;
  }
  workload::AdlOptions options;
  if (argc > 3) {
    options.total_requests = static_cast<std::size_t>(std::atoll(argv[3]));
  }
  const auto trace = workload::synthesize_adl_trace(options);
  if (auto st = workload::save_trace(argv[2], trace); !st.is_ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu requests to %s\n", trace.size(), argv[2]);
  return 0;
}

int cmd_summary(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool summary <file>\n");
    return 2;
  }
  auto trace = load_any(argv[2]);
  if (!trace) {
    std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
    return 1;
  }
  const auto s = workload::summarize(trace.value());
  std::printf("requests:          %zu\n", s.total_requests);
  std::printf("CGI requests:      %zu (%.1f%%)\n", s.cgi_requests,
              s.total_requests
                  ? 100.0 * s.cgi_requests / s.total_requests
                  : 0.0);
  std::printf("unique targets:    %zu (%zu CGI)\n", s.unique_targets,
              s.unique_cgi_targets);
  std::printf("service time:      %.1f s total, %.3f s mean file, %.3f s mean CGI\n",
              s.total_service_seconds, s.mean_file_service, s.mean_cgi_service);
  std::printf("longest request:   %.2f s\n", s.max_service);
  std::printf("hit upper bound:   %zu\n",
              workload::hit_upper_bound(trace.value()));
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool analyze <file> [thresholds...]\n");
    return 2;
  }
  auto trace = load_any(argv[2]);
  if (!trace) {
    std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
    return 1;
  }
  std::vector<double> thresholds;
  for (int i = 3; i < argc; ++i) thresholds.push_back(std::atof(argv[i]));
  if (thresholds.empty()) thresholds = {0.5, 1.0, 2.0, 4.0};

  TablePrinter table({"threshold (s)", "# long", "repeats", "# uniq",
                      "time saved (s)", "saved %"});
  for (const auto& row : workload::analyze_thresholds(trace.value(), thresholds)) {
    table.add_row({fmt_double(row.threshold_seconds, 2),
                   std::to_string(row.long_requests),
                   std::to_string(row.total_repeats),
                   std::to_string(row.unique_repeated),
                   fmt_double(row.time_saved_seconds, 1),
                   fmt_double(row.saved_percent, 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_sim(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: trace_tool sim <file> <nodes> "
                 "[standalone|nocache|open]...\n");
    return 2;
  }
  auto trace = load_any(argv[2]);
  if (!trace) {
    std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
    return 1;
  }
  sim::SimConfig config;
  config.nodes = static_cast<std::size_t>(std::atoll(argv[3]));
  config.client_streams = 2 * config.nodes;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "standalone") == 0) {
      config.cooperative = false;
    } else if (std::strcmp(argv[i], "nocache") == 0) {
      config.caching = false;
    } else if (std::strcmp(argv[i], "open") == 0) {
      config.open_loop = true;  // replay at the trace's own arrival times
    } else {
      std::fprintf(stderr, "unknown sim option: %s\n", argv[i]);
      return 2;
    }
  }
  const auto report = sim::run_cluster_sim(trace.value(), config);
  std::printf("completed:      %llu requests in %.1f simulated seconds\n",
              static_cast<unsigned long long>(report.requests_completed),
              report.sim_seconds);
  std::printf("mean response:  %.4f s (p95 %.4f s)\n", report.mean_response(),
              report.response_times.percentile(95));
  std::printf("hits:           %llu local + %llu remote (misses %llu)\n",
              static_cast<unsigned long long>(report.cache.local_hits),
              static_cast<unsigned long long>(report.cache.remote_hits),
              static_cast<unsigned long long>(report.cache.misses));
  std::printf("false misses:   %llu, false hits: %llu\n",
              static_cast<unsigned long long>(report.cache.false_misses),
              static_cast<unsigned long long>(report.cache.false_hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_tool <gen|summary|analyze|sim> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);
  if (cmd == "summary") return cmd_summary(argc, argv);
  if (cmd == "analyze") return cmd_analyze(argc, argv);
  if (cmd == "sim") return cmd_sim(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
