// Cluster demo: a three-node Swala group on loopback, each node running a
// real HTTP server, cooperating through the replicated cache directory.
//
// Shows the paper's two headline mechanisms in action:
//   * insert broadcast — node 0 executes a CGI, nodes 1 and 2 learn of it
//   * remote fetch     — node 1 serves the same request from node 0's cache
// and the weak-consistency artefact:
//   * false hit        — node 1 asks for an entry node 0 already dropped
#include <cstdio>
#include <thread>

#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/dispatcher.h"
#include "server/swala_server.h"

using namespace swala;

namespace {

core::ManagerOptions node_options(core::NodeId) {
  core::ManagerOptions options;
  options.limits = {500, 0};
  core::RuleDecision rule;
  rule.cacheable = true;
  options.rules.add_rule("/cgi-bin/*", rule);
  return options;
}

void wait_for_broadcast() {
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 3;
  cluster::LocalCluster cluster(kNodes, node_options);

  std::vector<std::unique_ptr<server::SwalaServer>> servers;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto registry = std::make_shared<cgi::HandlerRegistry>();
    cgi::ScriptedOptions cgi_options;
    cgi_options.mode = cgi::ComputeMode::kSleep;
    cgi_options.service_seconds = 0.08;  // a "spatial database query"
    cgi_options.output_bytes = 2048;
    registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(cgi_options));

    server::SwalaServerOptions options;
    options.request_threads = 4;
    servers.push_back(std::make_unique<server::SwalaServer>(
        options, std::move(registry), &cluster.manager(i)));
    if (auto st = servers.back()->start(); !st.is_ok()) {
      std::fprintf(stderr, "node %zu failed: %s\n", i, st.to_string().c_str());
      return 1;
    }
    std::printf("node %zu: http=127.0.0.1:%u info=%u data=%u\n", i,
                servers.back()->port(), cluster.group(i).info_port(),
                cluster.group(i).data_port());
  }

  const RealClock& clock = *RealClock::instance();
  auto timed_get = [&](std::size_t node, const std::string& target) {
    http::HttpClient client(servers[node]->address());
    const TimeNs start = clock.now();
    auto resp = client.get(target);
    const double ms = to_seconds(clock.now() - start) * 1e3;
    const auto state = resp ? resp.value().headers.get("X-Swala-Cache")
                            : std::nullopt;
    std::printf("  node %zu GET %-28s -> %-10s %6.1f ms\n", node,
                target.c_str(), state ? std::string(*state).c_str() : "error",
                ms);
  };

  std::printf("\n-- insert broadcast + remote fetch --\n");
  timed_get(0, "/cgi-bin/map?tile=42");  // miss: node 0 executes + broadcasts
  wait_for_broadcast();
  timed_get(1, "/cgi-bin/map?tile=42");  // hit-remote: fetched from node 0
  timed_get(2, "/cgi-bin/map?tile=42");  // hit-remote
  timed_get(0, "/cgi-bin/map?tile=42");  // hit-local

  std::printf("\n-- false hit (weak consistency §4.2) --\n");
  timed_get(0, "/cgi-bin/map?tile=7");
  wait_for_broadcast();
  // Drop the entry from node 0's store without broadcasting, simulating the
  // window between deletion and the erase broadcast arriving at peers.
  const_cast<core::CacheStore&>(cluster.manager(0).store())
      .erase("GET /cgi-bin/map?tile=7");
  timed_get(1, "/cgi-bin/map?tile=7");  // false hit -> re-executes locally

  std::printf("\n-- front-end dispatcher --\n");
  {
    std::vector<net::InetAddress> backends;
    for (const auto& server : servers) backends.push_back(server->address());
    server::Dispatcher dispatcher(server::DispatcherOptions{}, backends);
    if (!dispatcher.start().is_ok()) return 1;
    std::printf("  dispatcher on 127.0.0.1:%u forwarding to %zu nodes\n",
                dispatcher.port(), backends.size());

    http::HttpClient client(dispatcher.address());
    for (int i = 0; i < 6; ++i) {
      const TimeNs start = clock.now();
      auto resp = client.get("/cgi-bin/map?tile=42");  // cached everywhere
      const double ms = to_seconds(clock.now() - start) * 1e3;
      const auto state =
          resp ? resp.value().headers.get("X-Swala-Cache") : std::nullopt;
      std::printf("  via dispatcher GET map?tile=42  -> %-10s %6.1f ms\n",
                  state ? std::string(*state).c_str() : "error", ms);
    }
    const auto dstats = dispatcher.stats();
    std::printf("  dispatcher spread:");
    for (std::size_t i = 0; i < dstats.per_backend.size(); ++i) {
      std::printf(" node%zu=%llu", i,
                  static_cast<unsigned long long>(dstats.per_backend[i]));
    }
    std::printf("\n");
    dispatcher.stop();
  }

  std::printf("\n-- per-node statistics --\n");
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto s = cluster.manager(i).stats();
    const auto g = cluster.group(i).stats();
    std::printf(
        "  node %zu: local_hits=%llu remote_hits=%llu misses=%llu "
        "false_hits=%llu broadcasts=%llu fetches_served=%llu\n",
        i, static_cast<unsigned long long>(s.local_hits),
        static_cast<unsigned long long>(s.remote_hits),
        static_cast<unsigned long long>(s.misses),
        static_cast<unsigned long long>(s.false_hits),
        static_cast<unsigned long long>(g.broadcasts_sent),
        static_cast<unsigned long long>(g.fetches_served));
  }

  for (auto& server : servers) server->stop();
  cluster.stop();
  return 0;
}
