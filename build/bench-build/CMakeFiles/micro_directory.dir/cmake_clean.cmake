file(REMOVE_RECURSE
  "../bench/micro_directory"
  "../bench/micro_directory.pdb"
  "CMakeFiles/micro_directory.dir/micro_directory.cpp.o"
  "CMakeFiles/micro_directory.dir/micro_directory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
