# Empty dependencies file for micro_directory.
# This may be replaced when dependencies are built.
