# Empty dependencies file for fig4_multinode.
# This may be replaced when dependencies are built.
