file(REMOVE_RECURSE
  "../bench/fig4_multinode"
  "../bench/fig4_multinode.pdb"
  "CMakeFiles/fig4_multinode.dir/fig4_multinode.cpp.o"
  "CMakeFiles/fig4_multinode.dir/fig4_multinode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
