# Empty dependencies file for table5_hitratio_large.
# This may be replaced when dependencies are built.
