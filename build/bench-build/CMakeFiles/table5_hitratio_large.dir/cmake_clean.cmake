file(REMOVE_RECURSE
  "../bench/table5_hitratio_large"
  "../bench/table5_hitratio_large.pdb"
  "CMakeFiles/table5_hitratio_large.dir/table5_hitratio_large.cpp.o"
  "CMakeFiles/table5_hitratio_large.dir/table5_hitratio_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_hitratio_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
