# Empty compiler generated dependencies file for micro_accept.
# This may be replaced when dependencies are built.
