file(REMOVE_RECURSE
  "../bench/micro_accept"
  "../bench/micro_accept.pdb"
  "CMakeFiles/micro_accept.dir/micro_accept.cpp.o"
  "CMakeFiles/micro_accept.dir/micro_accept.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_accept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
