# Empty dependencies file for table1_log_analysis.
# This may be replaced when dependencies are built.
