file(REMOVE_RECURSE
  "../bench/table1_log_analysis"
  "../bench/table1_log_analysis.pdb"
  "CMakeFiles/table1_log_analysis.dir/table1_log_analysis.cpp.o"
  "CMakeFiles/table1_log_analysis.dir/table1_log_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
