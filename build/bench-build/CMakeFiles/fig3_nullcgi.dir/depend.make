# Empty dependencies file for fig3_nullcgi.
# This may be replaced when dependencies are built.
