file(REMOVE_RECURSE
  "../bench/fig3_nullcgi"
  "../bench/fig3_nullcgi.pdb"
  "CMakeFiles/fig3_nullcgi.dir/fig3_nullcgi.cpp.o"
  "CMakeFiles/fig3_nullcgi.dir/fig3_nullcgi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nullcgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
