file(REMOVE_RECURSE
  "../bench/table6_hitratio_small"
  "../bench/table6_hitratio_small.pdb"
  "CMakeFiles/table6_hitratio_small.dir/table6_hitratio_small.cpp.o"
  "CMakeFiles/table6_hitratio_small.dir/table6_hitratio_small.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_hitratio_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
