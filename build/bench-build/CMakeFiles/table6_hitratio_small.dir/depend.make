# Empty dependencies file for table6_hitratio_small.
# This may be replaced when dependencies are built.
