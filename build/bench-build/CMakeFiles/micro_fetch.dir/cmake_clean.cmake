file(REMOVE_RECURSE
  "../bench/micro_fetch"
  "../bench/micro_fetch.pdb"
  "CMakeFiles/micro_fetch.dir/micro_fetch.cpp.o"
  "CMakeFiles/micro_fetch.dir/micro_fetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
