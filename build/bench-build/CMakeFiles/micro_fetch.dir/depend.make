# Empty dependencies file for micro_fetch.
# This may be replaced when dependencies are built.
