file(REMOVE_RECURSE
  "../bench/table2_file_fetch"
  "../bench/table2_file_fetch.pdb"
  "CMakeFiles/table2_file_fetch.dir/table2_file_fetch.cpp.o"
  "CMakeFiles/table2_file_fetch.dir/table2_file_fetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_file_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
