# Empty compiler generated dependencies file for table2_file_fetch.
# This may be replaced when dependencies are built.
