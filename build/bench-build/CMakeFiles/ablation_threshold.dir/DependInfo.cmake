
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_threshold.cpp" "bench-build/CMakeFiles/ablation_threshold.dir/ablation_threshold.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_threshold.dir/ablation_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/swala_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swala_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swala_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cgi/CMakeFiles/swala_cgi.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
