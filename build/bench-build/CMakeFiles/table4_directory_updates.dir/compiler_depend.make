# Empty compiler generated dependencies file for table4_directory_updates.
# This may be replaced when dependencies are built.
