file(REMOVE_RECURSE
  "../bench/table4_directory_updates"
  "../bench/table4_directory_updates.pdb"
  "CMakeFiles/table4_directory_updates.dir/table4_directory_updates.cpp.o"
  "CMakeFiles/table4_directory_updates.dir/table4_directory_updates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_directory_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
