file(REMOVE_RECURSE
  "../bench/ablation_consistency"
  "../bench/ablation_consistency.pdb"
  "CMakeFiles/ablation_consistency.dir/ablation_consistency.cpp.o"
  "CMakeFiles/ablation_consistency.dir/ablation_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
