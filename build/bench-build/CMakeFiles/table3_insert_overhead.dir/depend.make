# Empty dependencies file for table3_insert_overhead.
# This may be replaced when dependencies are built.
