file(REMOVE_RECURSE
  "../bench/table3_insert_overhead"
  "../bench/table3_insert_overhead.pdb"
  "CMakeFiles/table3_insert_overhead.dir/table3_insert_overhead.cpp.o"
  "CMakeFiles/table3_insert_overhead.dir/table3_insert_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_insert_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
