# Empty dependencies file for swala_common.
# This may be replaced when dependencies are built.
