file(REMOVE_RECURSE
  "libswala_common.a"
)
