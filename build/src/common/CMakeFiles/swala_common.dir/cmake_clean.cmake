file(REMOVE_RECURSE
  "CMakeFiles/swala_common.dir/clock.cc.o"
  "CMakeFiles/swala_common.dir/clock.cc.o.d"
  "CMakeFiles/swala_common.dir/config.cc.o"
  "CMakeFiles/swala_common.dir/config.cc.o.d"
  "CMakeFiles/swala_common.dir/hash.cc.o"
  "CMakeFiles/swala_common.dir/hash.cc.o.d"
  "CMakeFiles/swala_common.dir/logging.cc.o"
  "CMakeFiles/swala_common.dir/logging.cc.o.d"
  "CMakeFiles/swala_common.dir/random.cc.o"
  "CMakeFiles/swala_common.dir/random.cc.o.d"
  "CMakeFiles/swala_common.dir/stats.cc.o"
  "CMakeFiles/swala_common.dir/stats.cc.o.d"
  "CMakeFiles/swala_common.dir/status.cc.o"
  "CMakeFiles/swala_common.dir/status.cc.o.d"
  "CMakeFiles/swala_common.dir/strings.cc.o"
  "CMakeFiles/swala_common.dir/strings.cc.o.d"
  "CMakeFiles/swala_common.dir/thread_pool.cc.o"
  "CMakeFiles/swala_common.dir/thread_pool.cc.o.d"
  "libswala_common.a"
  "libswala_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
