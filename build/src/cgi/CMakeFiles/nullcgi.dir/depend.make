# Empty dependencies file for nullcgi.
# This may be replaced when dependencies are built.
