file(REMOVE_RECURSE
  "CMakeFiles/nullcgi.dir/nullcgi_main.cc.o"
  "CMakeFiles/nullcgi.dir/nullcgi_main.cc.o.d"
  "nullcgi"
  "nullcgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullcgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
