file(REMOVE_RECURSE
  "CMakeFiles/swala_cgi.dir/handler.cc.o"
  "CMakeFiles/swala_cgi.dir/handler.cc.o.d"
  "CMakeFiles/swala_cgi.dir/process.cc.o"
  "CMakeFiles/swala_cgi.dir/process.cc.o.d"
  "CMakeFiles/swala_cgi.dir/registry.cc.o"
  "CMakeFiles/swala_cgi.dir/registry.cc.o.d"
  "CMakeFiles/swala_cgi.dir/scripted.cc.o"
  "CMakeFiles/swala_cgi.dir/scripted.cc.o.d"
  "libswala_cgi.a"
  "libswala_cgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_cgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
