file(REMOVE_RECURSE
  "libswala_cgi.a"
)
