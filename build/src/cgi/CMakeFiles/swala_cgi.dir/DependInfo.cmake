
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgi/handler.cc" "src/cgi/CMakeFiles/swala_cgi.dir/handler.cc.o" "gcc" "src/cgi/CMakeFiles/swala_cgi.dir/handler.cc.o.d"
  "/root/repo/src/cgi/process.cc" "src/cgi/CMakeFiles/swala_cgi.dir/process.cc.o" "gcc" "src/cgi/CMakeFiles/swala_cgi.dir/process.cc.o.d"
  "/root/repo/src/cgi/registry.cc" "src/cgi/CMakeFiles/swala_cgi.dir/registry.cc.o" "gcc" "src/cgi/CMakeFiles/swala_cgi.dir/registry.cc.o.d"
  "/root/repo/src/cgi/scripted.cc" "src/cgi/CMakeFiles/swala_cgi.dir/scripted.cc.o" "gcc" "src/cgi/CMakeFiles/swala_cgi.dir/scripted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
