# Empty dependencies file for swala_cgi.
# This may be replaced when dependencies are built.
