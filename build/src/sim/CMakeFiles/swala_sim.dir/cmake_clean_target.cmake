file(REMOVE_RECURSE
  "libswala_sim.a"
)
