# Empty dependencies file for swala_sim.
# This may be replaced when dependencies are built.
