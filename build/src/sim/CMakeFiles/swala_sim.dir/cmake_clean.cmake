file(REMOVE_RECURSE
  "CMakeFiles/swala_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/swala_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/swala_sim.dir/engine.cc.o"
  "CMakeFiles/swala_sim.dir/engine.cc.o.d"
  "libswala_sim.a"
  "libswala_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
