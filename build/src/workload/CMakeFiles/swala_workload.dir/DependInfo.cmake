
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/adl_synth.cc" "src/workload/CMakeFiles/swala_workload.dir/adl_synth.cc.o" "gcc" "src/workload/CMakeFiles/swala_workload.dir/adl_synth.cc.o.d"
  "/root/repo/src/workload/analyzer.cc" "src/workload/CMakeFiles/swala_workload.dir/analyzer.cc.o" "gcc" "src/workload/CMakeFiles/swala_workload.dir/analyzer.cc.o.d"
  "/root/repo/src/workload/clf.cc" "src/workload/CMakeFiles/swala_workload.dir/clf.cc.o" "gcc" "src/workload/CMakeFiles/swala_workload.dir/clf.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/swala_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/swala_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/webstone.cc" "src/workload/CMakeFiles/swala_workload.dir/webstone.cc.o" "gcc" "src/workload/CMakeFiles/swala_workload.dir/webstone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cgi/CMakeFiles/swala_cgi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
