# Empty dependencies file for swala_workload.
# This may be replaced when dependencies are built.
