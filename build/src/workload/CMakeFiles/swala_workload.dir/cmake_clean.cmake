file(REMOVE_RECURSE
  "CMakeFiles/swala_workload.dir/adl_synth.cc.o"
  "CMakeFiles/swala_workload.dir/adl_synth.cc.o.d"
  "CMakeFiles/swala_workload.dir/analyzer.cc.o"
  "CMakeFiles/swala_workload.dir/analyzer.cc.o.d"
  "CMakeFiles/swala_workload.dir/clf.cc.o"
  "CMakeFiles/swala_workload.dir/clf.cc.o.d"
  "CMakeFiles/swala_workload.dir/trace.cc.o"
  "CMakeFiles/swala_workload.dir/trace.cc.o.d"
  "CMakeFiles/swala_workload.dir/webstone.cc.o"
  "CMakeFiles/swala_workload.dir/webstone.cc.o.d"
  "libswala_workload.a"
  "libswala_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
