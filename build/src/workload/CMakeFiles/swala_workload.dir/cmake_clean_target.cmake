file(REMOVE_RECURSE
  "libswala_workload.a"
)
