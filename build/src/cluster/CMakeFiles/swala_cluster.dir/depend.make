# Empty dependencies file for swala_cluster.
# This may be replaced when dependencies are built.
