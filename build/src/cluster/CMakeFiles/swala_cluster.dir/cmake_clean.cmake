file(REMOVE_RECURSE
  "CMakeFiles/swala_cluster.dir/framing.cc.o"
  "CMakeFiles/swala_cluster.dir/framing.cc.o.d"
  "CMakeFiles/swala_cluster.dir/group.cc.o"
  "CMakeFiles/swala_cluster.dir/group.cc.o.d"
  "CMakeFiles/swala_cluster.dir/local_cluster.cc.o"
  "CMakeFiles/swala_cluster.dir/local_cluster.cc.o.d"
  "CMakeFiles/swala_cluster.dir/message.cc.o"
  "CMakeFiles/swala_cluster.dir/message.cc.o.d"
  "libswala_cluster.a"
  "libswala_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
