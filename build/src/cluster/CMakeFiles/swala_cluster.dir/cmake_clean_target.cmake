file(REMOVE_RECURSE
  "libswala_cluster.a"
)
