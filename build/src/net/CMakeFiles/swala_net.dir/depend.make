# Empty dependencies file for swala_net.
# This may be replaced when dependencies are built.
