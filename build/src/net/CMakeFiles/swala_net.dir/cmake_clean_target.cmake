file(REMOVE_RECURSE
  "libswala_net.a"
)
