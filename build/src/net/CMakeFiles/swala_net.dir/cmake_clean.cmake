file(REMOVE_RECURSE
  "CMakeFiles/swala_net.dir/fd.cc.o"
  "CMakeFiles/swala_net.dir/fd.cc.o.d"
  "CMakeFiles/swala_net.dir/socket.cc.o"
  "CMakeFiles/swala_net.dir/socket.cc.o.d"
  "libswala_net.a"
  "libswala_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
