# Empty compiler generated dependencies file for swala_core.
# This may be replaced when dependencies are built.
