file(REMOVE_RECURSE
  "CMakeFiles/swala_core.dir/directory.cc.o"
  "CMakeFiles/swala_core.dir/directory.cc.o.d"
  "CMakeFiles/swala_core.dir/manager.cc.o"
  "CMakeFiles/swala_core.dir/manager.cc.o.d"
  "CMakeFiles/swala_core.dir/monitor.cc.o"
  "CMakeFiles/swala_core.dir/monitor.cc.o.d"
  "CMakeFiles/swala_core.dir/replacement.cc.o"
  "CMakeFiles/swala_core.dir/replacement.cc.o.d"
  "CMakeFiles/swala_core.dir/rules.cc.o"
  "CMakeFiles/swala_core.dir/rules.cc.o.d"
  "CMakeFiles/swala_core.dir/storage.cc.o"
  "CMakeFiles/swala_core.dir/storage.cc.o.d"
  "CMakeFiles/swala_core.dir/store.cc.o"
  "CMakeFiles/swala_core.dir/store.cc.o.d"
  "libswala_core.a"
  "libswala_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
