
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/directory.cc" "src/core/CMakeFiles/swala_core.dir/directory.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/directory.cc.o.d"
  "/root/repo/src/core/manager.cc" "src/core/CMakeFiles/swala_core.dir/manager.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/manager.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/swala_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/replacement.cc" "src/core/CMakeFiles/swala_core.dir/replacement.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/replacement.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/swala_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/rules.cc.o.d"
  "/root/repo/src/core/storage.cc" "src/core/CMakeFiles/swala_core.dir/storage.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/storage.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/swala_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/swala_core.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/cgi/CMakeFiles/swala_cgi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
