file(REMOVE_RECURSE
  "libswala_core.a"
)
