
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/access_log.cc" "src/server/CMakeFiles/swala_server.dir/access_log.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/access_log.cc.o.d"
  "/root/repo/src/server/baselines.cc" "src/server/CMakeFiles/swala_server.dir/baselines.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/baselines.cc.o.d"
  "/root/repo/src/server/context.cc" "src/server/CMakeFiles/swala_server.dir/context.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/context.cc.o.d"
  "/root/repo/src/server/dispatcher.cc" "src/server/CMakeFiles/swala_server.dir/dispatcher.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/dispatcher.cc.o.d"
  "/root/repo/src/server/node.cc" "src/server/CMakeFiles/swala_server.dir/node.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/node.cc.o.d"
  "/root/repo/src/server/swala_server.cc" "src/server/CMakeFiles/swala_server.dir/swala_server.cc.o" "gcc" "src/server/CMakeFiles/swala_server.dir/swala_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/swala_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/swala_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cgi/CMakeFiles/swala_cgi.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swala_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
