# Empty dependencies file for swala_server.
# This may be replaced when dependencies are built.
