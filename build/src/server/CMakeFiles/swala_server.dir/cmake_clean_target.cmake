file(REMOVE_RECURSE
  "libswala_server.a"
)
