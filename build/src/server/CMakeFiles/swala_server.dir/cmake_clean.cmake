file(REMOVE_RECURSE
  "CMakeFiles/swala_server.dir/access_log.cc.o"
  "CMakeFiles/swala_server.dir/access_log.cc.o.d"
  "CMakeFiles/swala_server.dir/baselines.cc.o"
  "CMakeFiles/swala_server.dir/baselines.cc.o.d"
  "CMakeFiles/swala_server.dir/context.cc.o"
  "CMakeFiles/swala_server.dir/context.cc.o.d"
  "CMakeFiles/swala_server.dir/dispatcher.cc.o"
  "CMakeFiles/swala_server.dir/dispatcher.cc.o.d"
  "CMakeFiles/swala_server.dir/node.cc.o"
  "CMakeFiles/swala_server.dir/node.cc.o.d"
  "CMakeFiles/swala_server.dir/swala_server.cc.o"
  "CMakeFiles/swala_server.dir/swala_server.cc.o.d"
  "libswala_server.a"
  "libswala_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
