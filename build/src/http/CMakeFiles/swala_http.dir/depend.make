# Empty dependencies file for swala_http.
# This may be replaced when dependencies are built.
