
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/client.cc" "src/http/CMakeFiles/swala_http.dir/client.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/client.cc.o.d"
  "/root/repo/src/http/date.cc" "src/http/CMakeFiles/swala_http.dir/date.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/date.cc.o.d"
  "/root/repo/src/http/headers.cc" "src/http/CMakeFiles/swala_http.dir/headers.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/headers.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/swala_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/message.cc.o.d"
  "/root/repo/src/http/mime.cc" "src/http/CMakeFiles/swala_http.dir/mime.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/mime.cc.o.d"
  "/root/repo/src/http/parser.cc" "src/http/CMakeFiles/swala_http.dir/parser.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/parser.cc.o.d"
  "/root/repo/src/http/uri.cc" "src/http/CMakeFiles/swala_http.dir/uri.cc.o" "gcc" "src/http/CMakeFiles/swala_http.dir/uri.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
