file(REMOVE_RECURSE
  "libswala_http.a"
)
