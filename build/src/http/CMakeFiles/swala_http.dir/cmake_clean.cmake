file(REMOVE_RECURSE
  "CMakeFiles/swala_http.dir/client.cc.o"
  "CMakeFiles/swala_http.dir/client.cc.o.d"
  "CMakeFiles/swala_http.dir/date.cc.o"
  "CMakeFiles/swala_http.dir/date.cc.o.d"
  "CMakeFiles/swala_http.dir/headers.cc.o"
  "CMakeFiles/swala_http.dir/headers.cc.o.d"
  "CMakeFiles/swala_http.dir/message.cc.o"
  "CMakeFiles/swala_http.dir/message.cc.o.d"
  "CMakeFiles/swala_http.dir/mime.cc.o"
  "CMakeFiles/swala_http.dir/mime.cc.o.d"
  "CMakeFiles/swala_http.dir/parser.cc.o"
  "CMakeFiles/swala_http.dir/parser.cc.o.d"
  "CMakeFiles/swala_http.dir/uri.cc.o"
  "CMakeFiles/swala_http.dir/uri.cc.o.d"
  "libswala_http.a"
  "libswala_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swala_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
