file(REMOVE_RECURSE
  "CMakeFiles/server_admin_test.dir/server_admin_test.cc.o"
  "CMakeFiles/server_admin_test.dir/server_admin_test.cc.o.d"
  "server_admin_test"
  "server_admin_test.pdb"
  "server_admin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_admin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
