# Empty dependencies file for server_admin_test.
# This may be replaced when dependencies are built.
