file(REMOVE_RECURSE
  "CMakeFiles/server_access_log_test.dir/server_access_log_test.cc.o"
  "CMakeFiles/server_access_log_test.dir/server_access_log_test.cc.o.d"
  "server_access_log_test"
  "server_access_log_test.pdb"
  "server_access_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_access_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
