# Empty compiler generated dependencies file for core_invalidation_test.
# This may be replaced when dependencies are built.
