file(REMOVE_RECURSE
  "CMakeFiles/core_invalidation_test.dir/core_invalidation_test.cc.o"
  "CMakeFiles/core_invalidation_test.dir/core_invalidation_test.cc.o.d"
  "core_invalidation_test"
  "core_invalidation_test.pdb"
  "core_invalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
