file(REMOVE_RECURSE
  "CMakeFiles/core_replacement_test.dir/core_replacement_test.cc.o"
  "CMakeFiles/core_replacement_test.dir/core_replacement_test.cc.o.d"
  "core_replacement_test"
  "core_replacement_test.pdb"
  "core_replacement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
