# Empty compiler generated dependencies file for core_replacement_test.
# This may be replaced when dependencies are built.
