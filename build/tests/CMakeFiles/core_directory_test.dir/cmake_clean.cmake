file(REMOVE_RECURSE
  "CMakeFiles/core_directory_test.dir/core_directory_test.cc.o"
  "CMakeFiles/core_directory_test.dir/core_directory_test.cc.o.d"
  "core_directory_test"
  "core_directory_test.pdb"
  "core_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
