file(REMOVE_RECURSE
  "CMakeFiles/cgi_test.dir/cgi_test.cc.o"
  "CMakeFiles/cgi_test.dir/cgi_test.cc.o.d"
  "cgi_test"
  "cgi_test.pdb"
  "cgi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
