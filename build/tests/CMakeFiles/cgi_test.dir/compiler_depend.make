# Empty compiler generated dependencies file for cgi_test.
# This may be replaced when dependencies are built.
