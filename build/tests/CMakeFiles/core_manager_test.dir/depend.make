# Empty dependencies file for core_manager_test.
# This may be replaced when dependencies are built.
