file(REMOVE_RECURSE
  "CMakeFiles/core_manager_test.dir/core_manager_test.cc.o"
  "CMakeFiles/core_manager_test.dir/core_manager_test.cc.o.d"
  "core_manager_test"
  "core_manager_test.pdb"
  "core_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
