file(REMOVE_RECURSE
  "CMakeFiles/workload_clf_test.dir/workload_clf_test.cc.o"
  "CMakeFiles/workload_clf_test.dir/workload_clf_test.cc.o.d"
  "workload_clf_test"
  "workload_clf_test.pdb"
  "workload_clf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_clf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
