
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_clf_test.cc" "tests/CMakeFiles/workload_clf_test.dir/workload_clf_test.cc.o" "gcc" "tests/CMakeFiles/workload_clf_test.dir/workload_clf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/swala_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cgi/CMakeFiles/swala_cgi.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/swala_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swala_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
