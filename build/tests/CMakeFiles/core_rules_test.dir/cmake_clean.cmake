file(REMOVE_RECURSE
  "CMakeFiles/core_rules_test.dir/core_rules_test.cc.o"
  "CMakeFiles/core_rules_test.dir/core_rules_test.cc.o.d"
  "core_rules_test"
  "core_rules_test.pdb"
  "core_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
