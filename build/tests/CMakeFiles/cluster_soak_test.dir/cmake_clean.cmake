file(REMOVE_RECURSE
  "CMakeFiles/cluster_soak_test.dir/cluster_soak_test.cc.o"
  "CMakeFiles/cluster_soak_test.dir/cluster_soak_test.cc.o.d"
  "cluster_soak_test"
  "cluster_soak_test.pdb"
  "cluster_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
