file(REMOVE_RECURSE
  "CMakeFiles/server_dispatcher_test.dir/server_dispatcher_test.cc.o"
  "CMakeFiles/server_dispatcher_test.dir/server_dispatcher_test.cc.o.d"
  "server_dispatcher_test"
  "server_dispatcher_test.pdb"
  "server_dispatcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
