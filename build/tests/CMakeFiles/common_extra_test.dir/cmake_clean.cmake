file(REMOVE_RECURSE
  "CMakeFiles/common_extra_test.dir/common_extra_test.cc.o"
  "CMakeFiles/common_extra_test.dir/common_extra_test.cc.o.d"
  "common_extra_test"
  "common_extra_test.pdb"
  "common_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
