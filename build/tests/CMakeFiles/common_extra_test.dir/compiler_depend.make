# Empty compiler generated dependencies file for common_extra_test.
# This may be replaced when dependencies are built.
