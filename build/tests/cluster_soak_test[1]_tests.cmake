add_test([=[ClusterSoakTest.MixedChurnStaysConsistent]=]  /root/repo/build/tests/cluster_soak_test [==[--gtest_filter=ClusterSoakTest.MixedChurnStaysConsistent]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ClusterSoakTest.MixedChurnStaysConsistent]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cluster_soak_test_TESTS ClusterSoakTest.MixedChurnStaysConsistent)
