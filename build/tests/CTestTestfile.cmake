# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/common_extra_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/http_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/cgi_test[1]_include.cmake")
include("/root/repo/build/tests/core_replacement_test[1]_include.cmake")
include("/root/repo/build/tests/core_store_test[1]_include.cmake")
include("/root/repo/build/tests/core_directory_test[1]_include.cmake")
include("/root/repo/build/tests/core_rules_test[1]_include.cmake")
include("/root/repo/build/tests/core_manager_test[1]_include.cmake")
include("/root/repo/build/tests/core_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/core_invalidation_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_failure_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_soak_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/server_admin_test[1]_include.cmake")
include("/root/repo/build/tests/server_access_log_test[1]_include.cmake")
include("/root/repo/build/tests/server_dispatcher_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/workload_clf_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
