file(REMOVE_RECURSE
  "CMakeFiles/swalad.dir/swalad.cpp.o"
  "CMakeFiles/swalad.dir/swalad.cpp.o.d"
  "swalad"
  "swalad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swalad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
