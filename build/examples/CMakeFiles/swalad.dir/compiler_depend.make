# Empty compiler generated dependencies file for swalad.
# This may be replaced when dependencies are built.
